// Package task defines the vocabulary shared by the driver and the two
// executors: job/stage/task specifications with per-resource cost models,
// the resolved per-task work descriptions, and the metric records that the
// performance model consumes.
//
// A job is a DAG of stages; a stage is a set of identical parallel
// multitasks (the paper's term for today's tasks, §3). Each multitask reads
// input (an HDFS block, cached memory, or shuffled data from parent stages),
// computes (deserialize → operate → serialize), and writes output (shuffle
// data to local disk, an HDFS block, or a cached in-memory partition).
package task

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/sim"
)

// Resource identifies one of the four resources a monotask can use.
type Resource int

const (
	// CPUResource is a processor core.
	CPUResource Resource = iota
	// DiskResource is a disk drive (HDD or SSD).
	DiskResource
	// NetworkResource is the machine's NIC.
	NetworkResource
	// MemoryResource is the machine's memory-bandwidth system. Monotasks
	// never run on it alone; compute monotasks with a memory demand hold a
	// core while their data movement shares the machine's bandwidth ceiling.
	MemoryResource
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case CPUResource:
		return "cpu"
	case DiskResource:
		return "disk"
	case NetworkResource:
		return "network"
	case MemoryResource:
		return "memory"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Kind describes what a monotask is for. The performance model uses kinds to
// answer what-if questions — e.g. "store input in memory" removes
// InputRead disk time and the deserialization share of compute time (§6.3).
type Kind int

const (
	// KindCompute is a CPU monotask.
	KindCompute Kind = iota
	// KindInputRead reads job input from a local disk.
	KindInputRead
	// KindShuffleWrite spills a map task's shuffle output to disk.
	KindShuffleWrite
	// KindShuffleServeRead is the disk read on the serving side of a
	// shuffle fetch.
	KindShuffleServeRead
	// KindOutputWrite writes a job's final output to disk.
	KindOutputWrite
	// KindNetFetch fetches remote shuffle data over the network.
	KindNetFetch
	// KindMemSpill stages task buffer bytes that exceeded the machine's
	// memory capacity out to a local disk (memory-pressure spill).
	KindMemSpill
)

// String names the monotask kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindInputRead:
		return "input-read"
	case KindShuffleWrite:
		return "shuffle-write"
	case KindShuffleServeRead:
		return "shuffle-serve-read"
	case KindOutputWrite:
		return "output-write"
	case KindNetFetch:
		return "net-fetch"
	case KindMemSpill:
		return "mem-spill"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// StageSpec describes one stage's identical parallel multitasks. Costs are
// per task.
type StageSpec struct {
	ID       int
	Name     string
	NumTasks int

	// ParentIDs lists stages whose shuffle output this stage reads. Empty
	// for input stages.
	ParentIDs []int

	// InputBlocks maps task i to the HDFS block it reads (len == NumTasks).
	// Nil when the stage reads shuffled or in-memory input.
	InputBlocks []*dfs.Block

	// InputFromMem marks input cached in memory, deserialized: no disk read
	// and no deserialization CPU. InputBytesPerTask records the logical size.
	InputFromMem      bool
	InputBytesPerTask int64

	// CPU cost per task in core-seconds, split so the model can subtract the
	// deserialization share for in-memory what-ifs (§6.3).
	DeserCPU float64
	OpCPU    float64
	SerCPU   float64

	// ShuffleOutBytes is written by each task for later stages to fetch.
	// ShuffleInMemory keeps it in memory (the ML workload, §5.2), otherwise
	// it goes to local disk.
	ShuffleOutBytes int64
	ShuffleInMemory bool

	// OutputBytes is each task's final output. OutputToMem caches it
	// (e.g. building an in-memory dataset) instead of writing to HDFS via
	// the local disk.
	OutputBytes int64
	OutputToMem bool

	// Memory demand per task, honoured only on machines whose spec enables
	// the memory model (both zero otherwise — the default keeps memory out
	// of the simulation entirely). MemBytesPerTask is the data the compute
	// monotask moves through the memory system; MemBWPerTask caps the rate
	// one task can drive (<= 0 for uncapped), modelling per-core limits.
	MemBytesPerTask int64
	MemBWPerTask    float64
}

// HasShuffleInput reports whether tasks read shuffled data.
func (s *StageSpec) HasShuffleInput() bool { return len(s.ParentIDs) > 0 }

// TotalOpCPU returns the stage's total non-serde compute demand.
func (s *StageSpec) TotalOpCPU() float64 {
	return float64(s.NumTasks) * s.OpCPU
}

// TotalCPU returns the stage's total compute demand in core-seconds.
func (s *StageSpec) TotalCPU() float64 {
	return float64(s.NumTasks) * (s.DeserCPU + s.OpCPU + s.SerCPU)
}

// Validate reports structural errors. Safe on a nil receiver — a nil stage
// is an input error to report, not an invariant to panic on.
func (s *StageSpec) Validate() error {
	if s == nil {
		return fmt.Errorf("task: nil stage spec")
	}
	if s.NumTasks <= 0 {
		return fmt.Errorf("task: stage %q needs tasks, got %d", s.Name, s.NumTasks)
	}
	if s.InputBlocks != nil && len(s.InputBlocks) != s.NumTasks {
		return fmt.Errorf("task: stage %q has %d blocks for %d tasks", s.Name, len(s.InputBlocks), s.NumTasks)
	}
	if s.InputBlocks != nil && s.HasShuffleInput() {
		return fmt.Errorf("task: stage %q has both block and shuffle input", s.Name)
	}
	if s.DeserCPU < 0 || s.OpCPU < 0 || s.SerCPU < 0 {
		return fmt.Errorf("task: stage %q has negative CPU cost", s.Name)
	}
	if s.ShuffleOutBytes < 0 || s.OutputBytes < 0 {
		return fmt.Errorf("task: stage %q has negative output bytes", s.Name)
	}
	if s.MemBytesPerTask < 0 {
		return fmt.Errorf("task: stage %q has negative memory bytes", s.Name)
	}
	return nil
}

// JobSpec is a topologically ordered DAG of stages.
type JobSpec struct {
	Name   string
	Stages []*StageSpec
}

// Validate checks the whole job: stage IDs must be dense indices and
// parents must precede children (topological order). Safe on a nil receiver:
// specs arrive from user-facing APIs (monospark, the what-if service), so a
// nil or malformed spec must surface as an error, never a panic.
func (j *JobSpec) Validate() error {
	if j == nil {
		return fmt.Errorf("task: nil job spec")
	}
	if len(j.Stages) == 0 {
		return fmt.Errorf("task: job %q has no stages", j.Name)
	}
	for i, s := range j.Stages {
		if s.ID != i {
			return fmt.Errorf("task: job %q stage %d has ID %d", j.Name, i, s.ID)
		}
		if err := s.Validate(); err != nil {
			return err
		}
		for _, p := range s.ParentIDs {
			if p < 0 || p >= i {
				return fmt.Errorf("task: job %q stage %d depends on stage %d (not topological)", j.Name, i, p)
			}
		}
	}
	return nil
}

// Fetch is one shuffle fetch a task must perform: bytes residing on a source
// machine, possibly still in memory there (in-memory shuffle). FromDisk is
// honoured only for remote HDFS block reads (Task.RemoteRead), where the
// block's disk is known; shuffle serve reads let the serving machine's disk
// scheduler choose, so FromDisk is ignored for them.
type Fetch struct {
	From     int
	Bytes    int64
	FromMem  bool
	FromDisk int
	// Stage is the parent stage whose shuffle output is being fetched; the
	// pipelined executor keys buffer-cache lookups on it.
	Stage int
}

// Task is a multitask resolved for execution: placement plus concrete I/O.
type Task struct {
	Stage   *StageSpec
	Index   int
	Machine int

	// Input: at most one of the following is set.
	DiskReadBytes int64   // local HDFS block read ...
	DiskReadDisk  int     // ... from this local disk index
	RemoteRead    *Fetch  // non-local HDFS block: remote disk read + transfer
	MemReadBytes  int64   // cached input
	Fetches       []Fetch // shuffle input, one per source machine
}

// InputBytes returns the task's total input volume.
func (t *Task) InputBytes() int64 {
	b := t.DiskReadBytes + t.MemReadBytes
	if t.RemoteRead != nil {
		b += t.RemoteRead.Bytes
	}
	for _, f := range t.Fetches {
		b += f.Bytes
	}
	return b
}

// MonotaskMetric records one monotask's execution. The pipelined executor
// cannot produce these (that inability is the paper's thesis); it reports
// only task spans.
type MonotaskMetric struct {
	Resource Resource
	Kind     Kind
	Machine  int
	Queued   sim.Time // when the monotask became ready
	Start    sim.Time // when its resource began serving it
	End      sim.Time
	Bytes    int64
	// Compute split (KindCompute only), in core-seconds.
	DeserSec, OpSec, SerSec float64
	// MemBytes records the bytes the monotask moved through the machine's
	// memory system (KindCompute only; zero on memoryless machines).
	MemBytes int64
}

// Duration is the service time (excludes queueing).
func (m *MonotaskMetric) Duration() sim.Duration { return m.End - m.Start }

// QueueDelay is the time spent waiting for the resource.
func (m *MonotaskMetric) QueueDelay() sim.Duration { return m.Start - m.Queued }

// TaskMetrics records one multitask's execution — or its failure: a
// transient executor-side fault (injected disk I/O error, flaky shuffle
// fetch, killed process) reports Failed with a reason, and the driver
// charges the attempt against the task's retry budget and the machine's
// exclusion counter.
type TaskMetrics struct {
	StageID   int
	Index     int
	Machine   int
	Start     sim.Time
	End       sim.Time
	Monotasks []MonotaskMetric

	Failed     bool
	FailReason string
}

// Duration is the task's wall-clock span.
func (t *TaskMetrics) Duration() sim.Duration { return t.End - t.Start }

// NewTaskMetrics returns a metrics record with the Monotasks slice
// preallocated to exactly monotaskCap entries. Executors that know a task's
// decomposition up front (the monotasks worker derives it from its stage
// template) use this so metric collection never re-grows the slice.
func NewTaskMetrics(stageID, index, machine int, start sim.Time, monotaskCap int) *TaskMetrics {
	tm := &TaskMetrics{StageID: stageID, Index: index, Machine: machine, Start: start}
	if monotaskCap > 0 {
		tm.Monotasks = make([]MonotaskMetric, 0, monotaskCap)
	}
	return tm
}

// StageMetrics aggregates a stage run.
type StageMetrics struct {
	Spec  *StageSpec
	Start sim.Time
	End   sim.Time
	Tasks []*TaskMetrics
}

// Duration is the stage's wall-clock span.
func (s *StageMetrics) Duration() sim.Duration { return s.End - s.Start }

// MonotaskSeconds sums monotask service time on a resource, optionally
// filtered by kind (pass kind = -1 for all kinds).
func (s *StageMetrics) MonotaskSeconds(r Resource, kind Kind) float64 {
	var sum float64
	for _, t := range s.Tasks {
		if t == nil { // task slot not finished (aborted or mid-run stage)
			continue
		}
		for _, m := range t.Monotasks {
			if m.Resource != r {
				continue
			}
			if kind >= 0 && m.Kind != kind {
				continue
			}
			sum += float64(m.Duration())
		}
	}
	return sum
}

// MonotaskBytes sums bytes moved by monotasks on a resource/kind
// (kind = -1 for all kinds).
func (s *StageMetrics) MonotaskBytes(r Resource, kind Kind) int64 {
	var sum int64
	for _, t := range s.Tasks {
		if t == nil {
			continue
		}
		for _, m := range t.Monotasks {
			if m.Resource != r {
				continue
			}
			if kind >= 0 && m.Kind != kind {
				continue
			}
			sum += m.Bytes
		}
	}
	return sum
}

// MonotaskMemBytes sums the memory-system traffic recorded by the stage's
// monotasks. Kept separate from MonotaskBytes: a compute monotask's Bytes
// field stays zero (it moves no I/O bytes), while its MemBytes records the
// memory traffic the fourth-resource model charged it.
func (s *StageMetrics) MonotaskMemBytes() int64 {
	var sum int64
	for _, t := range s.Tasks {
		if t == nil {
			continue
		}
		for _, m := range t.Monotasks {
			sum += m.MemBytes
		}
	}
	return sum
}

// JobMetrics aggregates a job run.
type JobMetrics struct {
	Name   string
	Start  sim.Time
	End    sim.Time
	Stages []*StageMetrics
}

// Duration is the job's wall-clock runtime in virtual seconds.
func (j *JobMetrics) Duration() sim.Duration { return j.End - j.Start }
