package task

import (
	"testing"

	"repro/internal/dfs"
)

func validStage(id int) *StageSpec {
	return &StageSpec{ID: id, Name: "s", NumTasks: 4, OpCPU: 1}
}

func TestStageValidate(t *testing.T) {
	if err := validStage(0).Validate(); err != nil {
		t.Fatalf("valid stage rejected: %v", err)
	}
	bad := []*StageSpec{
		{ID: 0, Name: "none", NumTasks: 0},
		{ID: 0, Name: "blocks", NumTasks: 3, InputBlocks: []*dfs.Block{{}}},
		{ID: 0, Name: "both", NumTasks: 1, InputBlocks: []*dfs.Block{{}}, ParentIDs: []int{0}},
		{ID: 0, Name: "negcpu", NumTasks: 1, OpCPU: -1},
		{ID: 0, Name: "negbytes", NumTasks: 1, ShuffleOutBytes: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("stage %q validated but should not have", s.Name)
		}
	}
}

func TestJobValidate(t *testing.T) {
	j := &JobSpec{Name: "j", Stages: []*StageSpec{validStage(0), validStage(1)}}
	j.Stages[1].ParentIDs = []int{0}
	if err := j.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	empty := &JobSpec{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty job accepted")
	}
	wrongID := &JobSpec{Name: "w", Stages: []*StageSpec{validStage(5)}}
	if err := wrongID.Validate(); err == nil {
		t.Error("non-dense stage ID accepted")
	}
	forward := &JobSpec{Name: "f", Stages: []*StageSpec{validStage(0), validStage(1)}}
	forward.Stages[0].ParentIDs = []int{1}
	if err := forward.Validate(); err == nil {
		t.Error("forward dependency accepted")
	}
	selfDep := &JobSpec{Name: "s", Stages: []*StageSpec{validStage(0)}}
	selfDep.Stages[0].ParentIDs = []int{0}
	if err := selfDep.Validate(); err == nil {
		t.Error("self dependency accepted")
	}
}

func TestStageTotals(t *testing.T) {
	s := &StageSpec{NumTasks: 10, DeserCPU: 1, OpCPU: 2, SerCPU: 0.5}
	if got := s.TotalCPU(); got != 35 {
		t.Fatalf("TotalCPU = %v, want 35", got)
	}
	if got := s.TotalOpCPU(); got != 20 {
		t.Fatalf("TotalOpCPU = %v, want 20", got)
	}
}

func TestTaskInputBytes(t *testing.T) {
	tk := &Task{
		DiskReadBytes: 100,
		MemReadBytes:  50,
		RemoteRead:    &Fetch{From: 1, Bytes: 25},
		Fetches:       []Fetch{{From: 0, Bytes: 10}, {From: 2, Bytes: 15}},
	}
	if got := tk.InputBytes(); got != 200 {
		t.Fatalf("InputBytes = %d, want 200", got)
	}
}

func TestMetricAccessors(t *testing.T) {
	m := MonotaskMetric{Queued: 1, Start: 3, End: 7}
	if m.Duration() != 4 {
		t.Fatalf("Duration = %v, want 4", m.Duration())
	}
	if m.QueueDelay() != 2 {
		t.Fatalf("QueueDelay = %v, want 2", m.QueueDelay())
	}
	tm := &TaskMetrics{Start: 2, End: 12}
	if tm.Duration() != 10 {
		t.Fatalf("task Duration = %v, want 10", tm.Duration())
	}
}

func TestStageMetricsAggregation(t *testing.T) {
	sm := &StageMetrics{
		Start: 0, End: 10,
		Tasks: []*TaskMetrics{
			{Monotasks: []MonotaskMetric{
				{Resource: CPUResource, Kind: KindCompute, Start: 0, End: 2},
				{Resource: DiskResource, Kind: KindInputRead, Start: 0, End: 3, Bytes: 300},
				{Resource: DiskResource, Kind: KindShuffleWrite, Start: 3, End: 4, Bytes: 100},
			}},
			{Monotasks: []MonotaskMetric{
				{Resource: CPUResource, Kind: KindCompute, Start: 1, End: 4},
				{Resource: NetworkResource, Kind: KindNetFetch, Start: 0, End: 5, Bytes: 500},
			}},
		},
	}
	if got := sm.MonotaskSeconds(CPUResource, -1); got != 5 {
		t.Fatalf("cpu seconds = %v, want 5", got)
	}
	if got := sm.MonotaskSeconds(DiskResource, KindInputRead); got != 3 {
		t.Fatalf("input-read seconds = %v, want 3", got)
	}
	if got := sm.MonotaskBytes(DiskResource, -1); got != 400 {
		t.Fatalf("disk bytes = %d, want 400", got)
	}
	if got := sm.MonotaskBytes(NetworkResource, KindNetFetch); got != 500 {
		t.Fatalf("net bytes = %d, want 500", got)
	}
	if sm.Duration() != 10 {
		t.Fatalf("stage duration = %v, want 10", sm.Duration())
	}
}

func TestStringers(t *testing.T) {
	if CPUResource.String() != "cpu" || DiskResource.String() != "disk" || NetworkResource.String() != "network" {
		t.Fatal("Resource.String broken")
	}
	if Resource(99).String() == "" || Kind(99).String() == "" {
		t.Fatal("unknown values should still render")
	}
	kinds := []Kind{KindCompute, KindInputRead, KindShuffleWrite, KindShuffleServeRead, KindOutputWrite, KindNetFetch}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate Kind string %q", s)
		}
		seen[s] = true
	}
}
