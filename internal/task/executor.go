package task

// Executor is one worker machine's task runtime. The monotasks executor
// (internal/core) and the pipelined Spark-style executor (internal/pipeexec)
// both implement it; the driver (internal/jobsched) is executor-agnostic —
// mirroring how MonoSpark changed only the worker-side pipelining code (§4).
type Executor interface {
	// MachineID reports which cluster machine this executor runs on.
	MachineID() int
	// MaxConcurrentTasks is how many multitasks the driver should keep
	// assigned to this worker at once.
	MaxConcurrentTasks() int
	// Launch begins executing t; done fires on the simulation engine when
	// the task completes.
	Launch(t *Task, done func(*TaskMetrics))
}
