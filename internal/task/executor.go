package task

import "repro/internal/sim"

// Executor is one worker machine's task runtime. The monotasks executor
// (internal/core) and the pipelined Spark-style executor (internal/pipeexec)
// both implement it; the driver (internal/jobsched) is executor-agnostic —
// mirroring how MonoSpark changed only the worker-side pipelining code (§4).
type Executor interface {
	// MachineID reports which cluster machine this executor runs on.
	MachineID() int
	// MaxConcurrentTasks is how many multitasks the driver should keep
	// assigned to this worker at once.
	MaxConcurrentTasks() int
	// Launch begins executing t; done fires on the simulation engine when
	// the task completes (possibly with TaskMetrics.Failed set).
	Launch(t *Task, done func(*TaskMetrics))
}

// FaultInjector decides, at launch time, whether a task attempt suffers a
// transient executor-side fault. Both executors consult it (when installed
// via their Options) once per launched attempt; a failed attempt occupies
// its slot for `after` of virtual time — the work wasted before the fault
// manifested — and then completes with TaskMetrics.Failed and the reason.
//
// Implementations must be deterministic: the simulation is single-threaded,
// so a seeded PRNG consulted in call order reproduces bit-identical fault
// schedules (internal/faults.Injector is the canonical implementation).
type FaultInjector interface {
	AttemptFault(t *Task, now sim.Time) (reason string, after sim.Duration, failed bool)
}
