package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/task"
)

func sampleMetrics() *task.JobMetrics {
	spec := &task.StageSpec{ID: 0, Name: "map", NumTasks: 2}
	return &task.JobMetrics{
		Name: "job1", Start: 0, End: 10,
		Stages: []*task.StageMetrics{{
			Spec: spec, Start: 0, End: 10,
			Tasks: []*task.TaskMetrics{
				{StageID: 0, Index: 0, Machine: 0, Start: 0, End: 5,
					Monotasks: []task.MonotaskMetric{
						{Resource: task.DiskResource, Kind: task.KindInputRead, Machine: 0,
							Queued: 0, Start: 0.5, End: 2, Bytes: 1000},
						{Resource: task.CPUResource, Kind: task.KindCompute, Machine: 0,
							Queued: 2, Start: 2, End: 5, DeserSec: 1, OpSec: 1.5, SerSec: 0.5},
					}},
				nil, // a task that never ran must be skipped, not crash
			},
		}},
	}
}

func TestRecordsFlatten(t *testing.T) {
	rs := Records(sampleMetrics())
	if len(rs) != 2 {
		t.Fatalf("got %d records, want 2", len(rs))
	}
	r := rs[0]
	if r.Job != "job1" || r.Stage != "map" || r.Resource != "disk" || r.Kind != "input-read" {
		t.Fatalf("record wrong: %+v", r)
	}
	if r.Bytes != 1000 || r.StartS != 0.5 || r.EndS != 2 {
		t.Fatalf("record values wrong: %+v", r)
	}
	if rs[1].DeserS != 1 || rs[1].OpS != 1.5 || rs[1].SerS != 0.5 {
		t.Fatalf("compute split missing: %+v", rs[1])
	}
}

func TestWriteJSONLIsValidPerLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
	}
	if lines != 2 {
		t.Fatalf("got %d lines, want 2", lines)
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var complete, meta, queued int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if name, _ := ev["name"].(string); strings.Contains(name, "queued") {
				queued++
			}
			if ev["ts"] == nil || ev["pid"] == nil || ev["tid"] == nil {
				t.Fatalf("event missing fields: %v", ev)
			}
		case "M":
			meta++
		}
	}
	// Two monotasks, one with a queue wait, plus one process-name metadata.
	if complete != 3 || queued != 1 || meta != 1 {
		t.Fatalf("events: complete=%d queued=%d meta=%d; want 3/1/1", complete, queued, meta)
	}
}

func TestTraceTimesMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if strings.HasPrefix(ev.Name, "input-read") && !strings.Contains(ev.Name, "queued") {
			// 0.5 s → 500000 µs, duration 1.5 s → 1.5e6 µs.
			if ev.Ts != 500000 || ev.Dur != 1.5e6 {
				t.Fatalf("input-read ts/dur = %v/%v, want 5e5/1.5e6", ev.Ts, ev.Dur)
			}
			return
		}
	}
	t.Fatal("input-read event not found")
}
