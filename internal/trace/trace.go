// Package trace exports monotask-level execution records in two formats:
// JSON Lines (one record per monotask, for ad-hoc analysis) and the Chrome
// trace-event format (load in chrome://tracing or Perfetto to see each
// machine's per-resource lanes light up — the visual version of Fig. 3b).
//
// Only monotasks runs can be traced: the pipelined executor cannot say when
// a task used which resource, which is the paper's point.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/task"
)

// Record is one monotask's execution, denormalized with its job context.
type Record struct {
	Job      string  `json:"job"`
	Stage    string  `json:"stage"`
	StageID  int     `json:"stageId"`
	TaskIdx  int     `json:"task"`
	Machine  int     `json:"machine"`
	Resource string  `json:"resource"`
	Kind     string  `json:"kind"`
	QueuedS  float64 `json:"queued"`
	StartS   float64 `json:"start"`
	EndS     float64 `json:"end"`
	Bytes    int64   `json:"bytes,omitempty"`
	DeserS   float64 `json:"deserSec,omitempty"`
	OpS      float64 `json:"opSec,omitempty"`
	SerS     float64 `json:"serSec,omitempty"`
}

// Records flattens a job's monotask metrics.
func Records(jm *task.JobMetrics) []Record {
	var out []Record
	for _, st := range jm.Stages {
		name := st.Spec.Name
		for _, tm := range st.Tasks {
			if tm == nil {
				continue
			}
			for _, m := range tm.Monotasks {
				out = append(out, Record{
					Job:      jm.Name,
					Stage:    name,
					StageID:  tm.StageID,
					TaskIdx:  tm.Index,
					Machine:  m.Machine,
					Resource: m.Resource.String(),
					Kind:     m.Kind.String(),
					QueuedS:  float64(m.Queued),
					StartS:   float64(m.Start),
					EndS:     float64(m.End),
					Bytes:    m.Bytes,
					DeserS:   m.DeserSec,
					OpS:      m.OpSec,
					SerS:     m.SerSec,
				})
			}
		}
	}
	return out
}

// WriteJSONL writes one JSON object per monotask.
func WriteJSONL(w io.Writer, jm *task.JobMetrics) error {
	enc := json.NewEncoder(w)
	for _, r := range Records(jm) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Mark is a point annotation on the trace timeline — typically a fault
// injection or recovery (internal/faults.Record converts to this shape).
// Machine -1 draws the mark at global scope instead of on one machine.
type Mark struct {
	At      float64 // virtual seconds
	Label   string
	Machine int
}

// chromeEvent is one event in the Chrome trace-event format: complete ("X")
// spans for monotasks, instant ("i") events for fault marks. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  string         `json:"tid,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope: g, p, t
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta names processes/threads in the viewer.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  string         `json:"tid,omitempty"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the job as a Chrome trace: one process per
// machine, one thread lane per resource. Queue time is shown as a separate
// dimmer event preceding each monotask's service time.
func WriteChromeTrace(w io.Writer, jm *task.JobMetrics) error {
	return WriteChromeTraceEvents(w, jm, nil)
}

// WriteChromeTraceEvents is WriteChromeTrace plus instant-event marks:
// each Mark renders as an "i"-phase event (machine-scoped, or global when
// Machine is -1), so injected faults are visible in the same viewer as the
// monotask lanes they disrupted.
func WriteChromeTraceEvents(w io.Writer, jm *task.JobMetrics, marks []Mark) error {
	var events []any
	machines := map[int]bool{}
	for _, r := range Records(jm) {
		machines[r.Machine] = true
		lane := r.Resource
		label := fmt.Sprintf("%s s%d.t%d", r.Kind, r.StageID, r.TaskIdx)
		if wait := r.StartS - r.QueuedS; wait > 0 {
			events = append(events, chromeEvent{
				Name: label + " (queued)", Cat: "queue", Ph: "X",
				Ts: r.QueuedS * 1e6, Dur: wait * 1e6,
				Pid: r.Machine, Tid: lane,
			})
		}
		events = append(events, chromeEvent{
			Name: label, Cat: r.Kind, Ph: "X",
			Ts: r.StartS * 1e6, Dur: (r.EndS - r.StartS) * 1e6,
			Pid: r.Machine, Tid: lane,
			Args: map[string]any{"bytes": r.Bytes, "stage": r.Stage},
		})
	}
	for _, mk := range marks {
		ev := chromeEvent{
			Name: mk.Label, Cat: "fault", Ph: "i",
			Ts: mk.At * 1e6,
		}
		if mk.Machine >= 0 {
			ev.Pid = mk.Machine
			ev.Tid = "faults"
			ev.S = "p"
			machines[mk.Machine] = true
		} else {
			ev.S = "g"
		}
		events = append(events, ev)
	}
	for m := range machines {
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", Pid: m,
			Args: map[string]any{"name": fmt.Sprintf("machine %d", m)},
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
