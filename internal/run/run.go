// Package run wires a cluster, an executor mode, and a driver together —
// the shared entry point for experiments, benchmarks, and the public API.
package run

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobsched"
	"repro/internal/pipeexec"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// Mode selects the execution model.
type Mode int

const (
	// Monotasks is MonoSpark: per-resource schedulers, write-through disk
	// monotasks (§3).
	Monotasks Mode = iota
	// Spark is the pipelined baseline: slots, fine-grained pipelining,
	// buffer-cache writes (§2).
	Spark
	// SparkWriteThrough is Spark with the OS configured to flush writes to
	// disk promptly — the second Spark configuration of Fig. 5. Writes still
	// pipeline through the cache, but the dirty limits are tiny, so the job
	// pays for its writes before it can finish.
	SparkWriteThrough
)

// String names the executor mode.
func (m Mode) String() string {
	switch m {
	case Monotasks:
		return "monospark"
	case Spark:
		return "spark"
	case SparkWriteThrough:
		return "spark-flush"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configure a run.
type Options struct {
	Mode Mode
	// TasksPerMachine overrides the Spark slot count (Fig. 18's knob).
	// Ignored by Monotasks, which configures concurrency per resource.
	TasksPerMachine int
	// Mono and Pipe tune the respective executors further.
	Mono core.Options
	Pipe pipeexec.Options
	// Faults, when set, is installed into whichever executor the mode
	// selects (shorthand for setting Mono.Faults / Pipe.Faults).
	Faults task.FaultInjector
	// Sched configures the driver's resilience and speculation policies,
	// plus the control-plane strategy: Sched.WorkerDispatch delegates stage
	// execution to worker-side dispatchers (bit-identical results, the
	// driver off the per-task critical path).
	Sched jobsched.Config
	// Telemetry, when set, attaches a live sampler to the run's engine so the
	// run emits periodic snapshots (utilization, pool state, per-job
	// attribution) while it executes.
	Telemetry *telemetry.Config
	// OnTelemetry receives the run's sampler once the jobs finish — the hook
	// callers use to collect the snapshot ring. Only called when Telemetry is
	// set.
	OnTelemetry func(*telemetry.Sampler)
	// Shards, when above 1, runs the simulation on the sharded engine:
	// machines are partitioned into that many shards (clamped to the machine
	// count), each advancing its own event timeline up to a lookahead horizon
	// derived from the cluster topology (cluster.LookaheadHorizon), with
	// cross-shard effects synchronized at fabric boundaries. Sharding is an
	// execution strategy, not a model change — results are bit-identical to
	// the serial engine at any shard count (TestGoldenShardedVsSerial).
	Shards int
	// Deadline, when positive, bounds the run in virtual time: once the
	// simulation clock passes it the run aborts with an *AbortError carrying
	// the partial results accumulated so far.
	Deadline sim.Time
	// WallDeadline, when nonzero, bounds the run in wall-clock time — the
	// knob a harness uses to abort a stuck cell cleanly (monobench
	// --timeout). Checked between event batches, like Deadline.
	WallDeadline time.Time
}

// AbortError reports a run cancelled mid-flight — by a context, a virtual
// deadline, or a wall-clock deadline. The run's partial results are still
// returned alongside it: every job metrics slice is well-formed, with
// unfinished jobs marked failed and end-stamped at the abort time.
type AbortError struct {
	// Reason is the underlying cause (context.Canceled,
	// context.DeadlineExceeded, or a deadline description).
	Reason error
	// At is the virtual time the abort fired.
	At sim.Time
}

// Error describes the abort.
func (e *AbortError) Error() string {
	return fmt.Sprintf("run: aborted at virtual t=%.3fs: %v", float64(e.At), e.Reason)
}

// Unwrap exposes the cause, so errors.Is(err, context.DeadlineExceeded)
// works through an AbortError.
func (e *AbortError) Unwrap() error { return e.Reason }

// errVirtualDeadline is the Reason for virtual-time deadline aborts. It
// matches context.DeadlineExceeded via errors.Is for callers that treat all
// deadline shapes alike.
var errVirtualDeadline = fmt.Errorf("virtual deadline exceeded: %w", context.DeadlineExceeded)

// errWallDeadline is the Reason for wall-clock deadline aborts.
var errWallDeadline = fmt.Errorf("wall-clock deadline exceeded: %w", context.DeadlineExceeded)

// installAbort arms the engine's abort check for ctx and o's deadlines,
// returning a disarm function. When no cancellation source is configured the
// engine is left untouched (the uninstrumented hot path).
//
// The poll interval depends on the source: virtual deadlines are checked at
// every event boundary, so the abort lands deterministically on the first
// event past the deadline (cheap — one clock comparison); wall-clock and
// context sources amortize over the engine's default batch, since their
// firing time is not reproducible anyway.
func installAbort(ctx context.Context, e *sim.Engine, o Options) func() {
	done := ctx.Done()
	if done == nil && o.Deadline <= 0 && o.WallDeadline.IsZero() {
		return func() {}
	}
	every := sim.DefaultAbortInterval
	if o.Deadline > 0 {
		every = 1
	}
	check := func() error {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if o.Deadline > 0 && e.Now() > o.Deadline {
			return errVirtualDeadline
		}
		if !o.WallDeadline.IsZero() && time.Now().After(o.WallDeadline) {
			return errWallDeadline
		}
		return nil
	}
	e.SetAbortCheck(every, check)
	return func() { e.SetAbortCheck(0, nil) }
}

// finishAborted converts a fired engine abort into the caller-facing
// *AbortError, failing unfinished jobs so their handles and metrics are
// clean, and re-arms the engine for reuse. Returns nil if no abort fired.
func finishAborted(e *sim.Engine, d *jobsched.Driver) error {
	reason := e.AbortErr()
	if reason == nil {
		return nil
	}
	e.ClearAbort()
	aerr := &AbortError{Reason: reason, At: e.Now()}
	d.AbortAll(aerr)
	return aerr
}

// applySharding configures the cluster's engine per Options.Shards. A value
// of 1 explicitly selects the windowed scheduler with a single shard (useful
// for isolating windowing overhead from parallelism); 0 selects the plain
// serial scheduler, dropping any lane layer a previous run on a reused
// engine configured (production runs drain every lane before finishing, so
// this never orphans events).
//
// Sharding is only applied to monotasks-mode runs. The pipelined executor
// interleaves chunk-granularity cross-machine work — every ChunkBytes a task
// may call into a peer's disks with zero virtual delay, far below any
// achievable lookahead window — so lane-affine execution cannot reproduce
// the serial event order for it. Rather than silently diverge, pipelined
// runs always use the serial scheduler; EffectiveShards reports the outcome.
func applySharding(c *cluster.Cluster, o Options) {
	if s := o.EffectiveShards(); s > 0 {
		c.ConfigureSharding(s)
		return
	}
	c.DisableSharding()
}

// EffectiveShards is the shard count a run with these options actually uses:
// Shards for monotasks-mode runs, 0 (serial) otherwise. Diagnostic surfaces
// (the what-if service's /stats, monoperf) report this rather than the
// requested value.
func (o Options) EffectiveShards() int {
	if o.Shards > 0 && o.Mode == Monotasks {
		return o.Shards
	}
	return 0
}

// startTelemetry attaches a sampler per Options, returning a finish hook.
func (o Options) startTelemetry(c *cluster.Cluster, d *jobsched.Driver) func() {
	if o.Telemetry == nil {
		return func() {}
	}
	s := telemetry.Start(c, d, *o.Telemetry)
	return func() {
		s.Stop()
		if o.OnTelemetry != nil {
			o.OnTelemetry(s)
		}
	}
}

// Executors builds one executor per machine of c in the requested mode.
func Executors(c *cluster.Cluster, o Options) []task.Executor {
	execs := make([]task.Executor, c.Size())
	switch o.Mode {
	case Monotasks:
		mo := o.Mono
		if o.Faults != nil {
			mo.Faults = o.Faults
		}
		g := core.NewGroup(c, mo)
		for i, w := range g.Workers {
			execs[i] = w
		}
	default:
		po := o.Pipe
		if o.Faults != nil {
			po.Faults = o.Faults
		}
		if o.TasksPerMachine > 0 {
			po.TasksPerMachine = o.TasksPerMachine
		}
		if o.Mode == SparkWriteThrough {
			// Force prompt writeback: a tiny dirty budget throttles writers
			// to the flusher's pace without serializing each chunk.
			po.DirtyLimit = 8 << 20
			po.FlushDelay = 0.1
		}
		g := pipeexec.NewGroup(c, po)
		for i, w := range g.Workers {
			execs[i] = w
		}
	}
	return execs
}

// Driver builds a ready driver over c in the requested mode.
func Driver(c *cluster.Cluster, fs *dfs.FS, o Options) (*jobsched.Driver, error) {
	return jobsched.NewWithConfig(c, fs, Executors(c, o), o.Sched)
}

// DriverWith builds a driver over pre-built executors (callers that need to
// keep executor handles for inspection).
func DriverWith(c *cluster.Cluster, fs *dfs.FS, execs []task.Executor) (*jobsched.Driver, error) {
	return jobsched.New(c, fs, execs)
}

// Jobs executes specs (submitted together, so they run concurrently) and
// returns their metrics in submission order. Options deadlines (virtual or
// wall-clock) are honoured; for cancellation from a caller's context use
// JobsContext.
func Jobs(c *cluster.Cluster, fs *dfs.FS, o Options, specs ...*task.JobSpec) ([]*task.JobMetrics, error) {
	return JobsContext(context.Background(), c, fs, o, specs...)
}

// JobsContext is Jobs with cooperative cancellation: the run aborts cleanly
// when ctx is cancelled or an Options deadline passes, returning the partial
// metrics together with an *AbortError (unfinished jobs are marked failed
// and end-stamped at the abort time). The check rides the engine's event
// loop, so an un-cancelled run is byte-identical to one executed without a
// context.
func JobsContext(ctx context.Context, c *cluster.Cluster, fs *dfs.FS, o Options, specs ...*task.JobSpec) ([]*task.JobMetrics, error) {
	applySharding(c, o)
	d, err := Driver(c, fs, o)
	if err != nil {
		return nil, err
	}
	finish := o.startTelemetry(c, d)
	for _, s := range specs {
		if _, err := d.Submit(s); err != nil {
			finish()
			return nil, err
		}
	}
	disarm := installAbort(ctx, c.Engine, o)
	ms := d.Run()
	disarm()
	finish()
	if aerr := finishAborted(c.Engine, d); aerr != nil {
		return ms, aerr
	}
	return ms, nil
}

// Submission is one job of an open-loop arrival schedule: a spec, the
// virtual time it arrives at the driver, and its scheduling tags.
type Submission struct {
	Spec *task.JobSpec
	At   sim.Time
	Opts jobsched.SubmitOptions
}

// JobsAt executes an arrival schedule: each job is submitted at its arrival
// time while the cluster runs, without waiting for earlier jobs (an open
// loop — the load does not back off when the cluster falls behind). Returns
// the job handles in schedule order; handle metrics measure sojourn time
// (admission queueing included) from each job's arrival.
func JobsAt(c *cluster.Cluster, fs *dfs.FS, o Options, subs []Submission) ([]*jobsched.JobHandle, error) {
	return JobsAtContext(context.Background(), c, fs, o, subs)
}

// JobsAtContext is JobsAt with cooperative cancellation (see JobsContext).
// An arrival schedule with a negative arrival time is rejected up front — it
// cannot be scheduled, and letting it reach the engine would panic.
func JobsAtContext(ctx context.Context, c *cluster.Cluster, fs *dfs.FS, o Options, subs []Submission) ([]*jobsched.JobHandle, error) {
	for i, s := range subs {
		if s.Spec == nil {
			return nil, fmt.Errorf("run: submission %d has no job spec", i)
		}
		if s.At < c.Engine.Now() {
			return nil, fmt.Errorf("run: submission %d (%q) arrives at t=%v, before the cluster clock %v", i, s.Spec.Name, s.At, c.Engine.Now())
		}
	}
	applySharding(c, o)
	d, err := Driver(c, fs, o)
	if err != nil {
		return nil, err
	}
	finish := o.startTelemetry(c, d)
	handles := make([]*jobsched.JobHandle, len(subs))
	var submitErr error
	for i, s := range subs {
		i, s := i, s
		c.Engine.At(s.At, func() {
			h, err := d.SubmitWith(s.Spec, s.Opts)
			if err != nil && submitErr == nil {
				submitErr = fmt.Errorf("run: submitting job %d (%q): %w", i, s.Spec.Name, err)
			}
			handles[i] = h
		})
	}
	disarm := installAbort(ctx, c.Engine, o)
	d.Run()
	disarm()
	finish()
	aerr := finishAborted(c.Engine, d)
	if submitErr != nil {
		return nil, submitErr
	}
	if aerr != nil {
		return handles, aerr
	}
	return handles, nil
}
