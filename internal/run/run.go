// Package run wires a cluster, an executor mode, and a driver together —
// the shared entry point for experiments, benchmarks, and the public API.
package run

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobsched"
	"repro/internal/pipeexec"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// Mode selects the execution model.
type Mode int

const (
	// Monotasks is MonoSpark: per-resource schedulers, write-through disk
	// monotasks (§3).
	Monotasks Mode = iota
	// Spark is the pipelined baseline: slots, fine-grained pipelining,
	// buffer-cache writes (§2).
	Spark
	// SparkWriteThrough is Spark with the OS configured to flush writes to
	// disk promptly — the second Spark configuration of Fig. 5. Writes still
	// pipeline through the cache, but the dirty limits are tiny, so the job
	// pays for its writes before it can finish.
	SparkWriteThrough
)

// String names the executor mode.
func (m Mode) String() string {
	switch m {
	case Monotasks:
		return "monospark"
	case Spark:
		return "spark"
	case SparkWriteThrough:
		return "spark-flush"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configure a run.
type Options struct {
	Mode Mode
	// TasksPerMachine overrides the Spark slot count (Fig. 18's knob).
	// Ignored by Monotasks, which configures concurrency per resource.
	TasksPerMachine int
	// Mono and Pipe tune the respective executors further.
	Mono core.Options
	Pipe pipeexec.Options
	// Faults, when set, is installed into whichever executor the mode
	// selects (shorthand for setting Mono.Faults / Pipe.Faults).
	Faults task.FaultInjector
	// Sched configures the driver's resilience and speculation policies.
	Sched jobsched.Config
	// Telemetry, when set, attaches a live sampler to the run's engine so the
	// run emits periodic snapshots (utilization, pool state, per-job
	// attribution) while it executes.
	Telemetry *telemetry.Config
	// OnTelemetry receives the run's sampler once the jobs finish — the hook
	// callers use to collect the snapshot ring. Only called when Telemetry is
	// set.
	OnTelemetry func(*telemetry.Sampler)
}

// startTelemetry attaches a sampler per Options, returning a finish hook.
func (o Options) startTelemetry(c *cluster.Cluster, d *jobsched.Driver) func() {
	if o.Telemetry == nil {
		return func() {}
	}
	s := telemetry.Start(c, d, *o.Telemetry)
	return func() {
		s.Stop()
		if o.OnTelemetry != nil {
			o.OnTelemetry(s)
		}
	}
}

// Executors builds one executor per machine of c in the requested mode.
func Executors(c *cluster.Cluster, o Options) []task.Executor {
	execs := make([]task.Executor, c.Size())
	switch o.Mode {
	case Monotasks:
		mo := o.Mono
		if o.Faults != nil {
			mo.Faults = o.Faults
		}
		g := core.NewGroup(c, mo)
		for i, w := range g.Workers {
			execs[i] = w
		}
	default:
		po := o.Pipe
		if o.Faults != nil {
			po.Faults = o.Faults
		}
		if o.TasksPerMachine > 0 {
			po.TasksPerMachine = o.TasksPerMachine
		}
		if o.Mode == SparkWriteThrough {
			// Force prompt writeback: a tiny dirty budget throttles writers
			// to the flusher's pace without serializing each chunk.
			po.DirtyLimit = 8 << 20
			po.FlushDelay = 0.1
		}
		g := pipeexec.NewGroup(c, po)
		for i, w := range g.Workers {
			execs[i] = w
		}
	}
	return execs
}

// Driver builds a ready driver over c in the requested mode.
func Driver(c *cluster.Cluster, fs *dfs.FS, o Options) (*jobsched.Driver, error) {
	return jobsched.NewWithConfig(c, fs, Executors(c, o), o.Sched)
}

// DriverWith builds a driver over pre-built executors (callers that need to
// keep executor handles for inspection).
func DriverWith(c *cluster.Cluster, fs *dfs.FS, execs []task.Executor) (*jobsched.Driver, error) {
	return jobsched.New(c, fs, execs)
}

// Jobs executes specs (submitted together, so they run concurrently) and
// returns their metrics in submission order.
func Jobs(c *cluster.Cluster, fs *dfs.FS, o Options, specs ...*task.JobSpec) ([]*task.JobMetrics, error) {
	d, err := Driver(c, fs, o)
	if err != nil {
		return nil, err
	}
	finish := o.startTelemetry(c, d)
	for _, s := range specs {
		if _, err := d.Submit(s); err != nil {
			return nil, err
		}
	}
	ms := d.Run()
	finish()
	return ms, nil
}

// Submission is one job of an open-loop arrival schedule: a spec, the
// virtual time it arrives at the driver, and its scheduling tags.
type Submission struct {
	Spec *task.JobSpec
	At   sim.Time
	Opts jobsched.SubmitOptions
}

// JobsAt executes an arrival schedule: each job is submitted at its arrival
// time while the cluster runs, without waiting for earlier jobs (an open
// loop — the load does not back off when the cluster falls behind). Returns
// the job handles in schedule order; handle metrics measure sojourn time
// (admission queueing included) from each job's arrival.
func JobsAt(c *cluster.Cluster, fs *dfs.FS, o Options, subs []Submission) ([]*jobsched.JobHandle, error) {
	d, err := Driver(c, fs, o)
	if err != nil {
		return nil, err
	}
	finish := o.startTelemetry(c, d)
	handles := make([]*jobsched.JobHandle, len(subs))
	var submitErr error
	for i, s := range subs {
		i, s := i, s
		c.Engine.At(s.At, func() {
			h, err := d.SubmitWith(s.Spec, s.Opts)
			if err != nil && submitErr == nil {
				submitErr = fmt.Errorf("run: submitting job %d (%q): %w", i, s.Spec.Name, err)
			}
			handles[i] = h
		})
	}
	d.Run()
	finish()
	if submitErr != nil {
		return nil, submitErr
	}
	return handles, nil
}
