package run

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/sim"
	"repro/internal/task"
)

func cancelSpec(name string, tasks int) *task.JobSpec {
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
		{ID: 0, Name: name + "-map", NumTasks: tasks, OpCPU: 2, ShuffleOutBytes: 64 << 20},
		{ID: 1, Name: name + "-reduce", NumTasks: tasks, OpCPU: 2, ParentIDs: []int{0}},
	}}
}

func TestJobsContextPreCancelled(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, err := JobsContext(ctx, c, fs, Options{Mode: Monotasks}, cancelSpec("pre", 8))
	if err == nil {
		t.Fatal("pre-cancelled context: want abort error, got nil")
	}
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("error %T is not *AbortError: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abort error does not unwrap to context.Canceled: %v", err)
	}
	// Partial results are still well-formed: one metrics record per job,
	// end-stamped no later than the abort time.
	if len(ms) != 1 {
		t.Fatalf("got %d partial metrics, want 1", len(ms))
	}
	if ms[0].End < ms[0].Start {
		t.Fatalf("aborted job has inverted span [%v, %v]", ms[0].Start, ms[0].End)
	}
	// Nothing ran: the context was dead before the first event.
	if got := c.Engine.Now(); got != 0 {
		t.Fatalf("virtual clock advanced to %v under a pre-cancelled context", got)
	}
}

func TestVirtualDeadlineAborts(t *testing.T) {
	// Measure the uninterrupted runtime first, then abort at half of it.
	full := cluster.MustNew(2, cluster.M2_4XLarge())
	fsFull, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	ms, err := Jobs(full, fsFull, Options{Mode: Monotasks}, cancelSpec("full", 16))
	if err != nil {
		t.Fatal(err)
	}
	fullEnd := ms[0].End
	if fullEnd <= 0 {
		t.Fatalf("uninterrupted run finished at t=%v", fullEnd)
	}

	deadline := fullEnd / 2
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	ms, err = Jobs(c, fs, Options{Mode: Monotasks, Deadline: deadline}, cancelSpec("full", 16))
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("want *AbortError at virtual deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("virtual-deadline abort does not match context.DeadlineExceeded: %v", err)
	}
	if aerr.At < deadline {
		t.Fatalf("abort fired at t=%v, before the deadline %v", aerr.At, deadline)
	}
	if aerr.At >= fullEnd {
		t.Fatalf("abort fired at t=%v, after the job would have finished (%v)", aerr.At, fullEnd)
	}
	if len(ms) != 1 || ms[0].End != aerr.At {
		t.Fatalf("partial metrics not end-stamped at abort: got %+v, abort at %v", ms[0], aerr.At)
	}
}

func TestWallDeadlineAborts(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	o := Options{Mode: Monotasks, WallDeadline: time.Now().Add(-time.Second)}
	_, err := Jobs(c, fs, o, cancelSpec("wall", 8))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired wall deadline: want DeadlineExceeded, got %v", err)
	}
}

func TestJobsAtContextAborts(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	subs := []Submission{
		{Spec: cancelSpec("a", 8), At: 0},
		{Spec: cancelSpec("b", 8), At: 1},
	}
	handles, err := JobsAt(c, fs, Options{Mode: Monotasks, Deadline: sim.Time(0.001)}, subs)
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if len(handles) != 2 {
		t.Fatalf("got %d handles, want 2", len(handles))
	}
}

func TestJobsAtRejectsNegativeArrival(t *testing.T) {
	c := cluster.MustNew(1, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 2})
	_, err := JobsAt(c, fs, Options{Mode: Monotasks}, []Submission{
		{Spec: cancelSpec("late", 4), At: -1},
	})
	if err == nil {
		t.Fatal("negative arrival time accepted")
	}
	var aerr *AbortError
	if errors.As(err, &aerr) {
		t.Fatalf("validation failure surfaced as abort: %v", err)
	}
}

func TestJobsAtRejectsNilSpec(t *testing.T) {
	c := cluster.MustNew(1, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 2})
	if _, err := JobsAt(c, fs, Options{Mode: Monotasks}, []Submission{{Spec: nil}}); err == nil {
		t.Fatal("nil submission spec accepted")
	}
}

// metricsFingerprint canonicalizes a run's metrics for byte-identity checks.
func metricsFingerprint(t *testing.T, ms []*task.JobMetrics) string {
	t.Helper()
	b, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAbortAtAnyDeadlineLeavesFreshRunsIdentical is the isolation property
// behind the what-if service's memoization contract: interleaving aborted
// runs (at a sweep of virtual deadlines) with fresh runs must leave every
// fresh run byte-identical to the golden uninterrupted run. An abort may not
// leak state — pooled events, scheduler residue, anything — into later runs.
func TestAbortAtAnyDeadlineLeavesFreshRunsIdentical(t *testing.T) {
	freshRun := func(deadline sim.Time) ([]*task.JobMetrics, error) {
		c := cluster.MustNew(2, cluster.M2_4XLarge())
		fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
		o := Options{Mode: Monotasks, Deadline: deadline}
		return Jobs(c, fs, o, cancelSpec("prop-a", 12), cancelSpec("prop-b", 12))
	}
	golden, err := freshRun(0)
	if err != nil {
		t.Fatal(err)
	}
	want := metricsFingerprint(t, golden)
	end := golden[1].End
	if end <= 0 {
		t.Fatalf("golden run empty: end=%v", end)
	}
	for i := 1; i <= 9; i++ {
		deadline := end * sim.Time(float64(i)/10)
		if _, aerr := freshRun(deadline); aerr == nil {
			t.Fatalf("deadline %v (< end %v) did not abort", deadline, end)
		}
		ms, err := freshRun(0)
		if err != nil {
			t.Fatalf("fresh run after abort at %v failed: %v", deadline, err)
		}
		if got := metricsFingerprint(t, ms); got != want {
			t.Fatalf("fresh run after abort at deadline %v diverged from golden", deadline)
		}
	}
}
