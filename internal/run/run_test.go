package run

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobsched"
	"repro/internal/pipeexec"
	"repro/internal/task"
)

func TestModeStrings(t *testing.T) {
	if Monotasks.String() != "monospark" || Spark.String() != "spark" ||
		SparkWriteThrough.String() != "spark-flush" {
		t.Fatal("Mode.String broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestExecutorsMatchMode(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	mono := Executors(c, Options{Mode: Monotasks})
	if len(mono) != 2 {
		t.Fatalf("%d executors, want 2", len(mono))
	}
	if _, ok := mono[0].(*core.Worker); !ok {
		t.Fatalf("monotasks mode built %T", mono[0])
	}
	c2 := cluster.MustNew(2, cluster.M2_4XLarge())
	spark := Executors(c2, Options{Mode: Spark})
	if _, ok := spark[0].(*pipeexec.Worker); !ok {
		t.Fatalf("spark mode built %T", spark[0])
	}
}

func TestTasksPerMachineOverride(t *testing.T) {
	c := cluster.MustNew(1, cluster.M2_4XLarge())
	ex := Executors(c, Options{Mode: Spark, TasksPerMachine: 3})
	if got := ex[0].MaxConcurrentTasks(); got != 3 {
		t.Fatalf("slots = %d, want 3", got)
	}
	c2 := cluster.MustNew(1, cluster.M2_4XLarge())
	ex2 := Executors(c2, Options{Mode: Monotasks, TasksPerMachine: 3})
	if got := ex2[0].MaxConcurrentTasks(); got == 3 {
		t.Fatal("monotasks mode must ignore the slot override (§7)")
	}
}

func TestJobsRunsConcurrently(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	mk := func(name string) *task.JobSpec {
		return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
			{ID: 0, Name: name, NumTasks: 8, OpCPU: 1},
		}}
	}
	ms, err := Jobs(c, fs, Options{Mode: Monotasks}, mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("%d results, want 2", len(ms))
	}
	// Concurrent jobs overlap: both start at 0.
	if ms[0].Start != 0 || ms[1].Start != 0 {
		t.Fatalf("jobs started at %v, %v; want both 0 (submitted together)", ms[0].Start, ms[1].Start)
	}
}

// TestShardsZeroRestoresSerialMode pins applySharding's contract on a reused
// cluster (the whatifsvc session pattern): a Shards=0 run after a Shards>0
// run drops the lane layer instead of leaving the windowed scheduler — and
// its per-global-event lane scan — configured.
func TestShardsZeroRestoresSerialMode(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	mk := func(name string) *task.JobSpec {
		return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
			{ID: 0, Name: name, NumTasks: 4, OpCPU: 1},
		}}
	}
	if _, err := Jobs(c, fs, Options{Mode: Monotasks, Shards: 2}, mk("a")); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine.ShardCount(); got != 2 {
		t.Fatalf("ShardCount after sharded run = %d, want 2", got)
	}
	if _, err := Jobs(c, fs, Options{Mode: Monotasks}, mk("b")); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine.ShardCount(); got != 0 {
		t.Fatalf("ShardCount after Shards=0 run = %d, want 0 (serial mode restored)", got)
	}
}

func TestJobsAtHonoursArrivalSchedule(t *testing.T) {
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 2})
	mk := func(name string) *task.JobSpec {
		return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
			{ID: 0, Name: name, NumTasks: 8, OpCPU: 1},
		}}
	}
	o := Options{Mode: Monotasks, Sched: jobsched.Config{
		Pools: []jobsched.PoolConfig{{Name: "p", Weight: 2}},
	}}
	hs, err := JobsAt(c, fs, o, []Submission{
		{Spec: mk("a"), At: 0, Opts: jobsched.SubmitOptions{Pool: "p"}},
		{Spec: mk("b"), At: 0.5},
		{Spec: mk("c"), At: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("%d handles, want 3", len(hs))
	}
	wantArrivals := []float64{0, 0.5, 2}
	for i, h := range hs {
		if err := h.Err(); err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
		if got := float64(h.Submitted); got != wantArrivals[i] {
			t.Fatalf("job %d submitted at %v, want %v", i, got, wantArrivals[i])
		}
		if h.Metrics.Start < h.Submitted {
			t.Fatalf("job %d started before it arrived", i)
		}
	}
}

func TestJobsAtRejectsUndeclaredPool(t *testing.T) {
	c := cluster.MustNew(1, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 2})
	spec := &task.JobSpec{Name: "x", Stages: []*task.StageSpec{
		{ID: 0, Name: "x", NumTasks: 2, OpCPU: 1},
	}}
	_, err := JobsAt(c, fs, Options{Mode: Monotasks}, []Submission{
		{Spec: spec, At: 0, Opts: jobsched.SubmitOptions{Pool: "ghost"}},
	})
	if err == nil {
		t.Fatal("submission to undeclared pool accepted")
	}
}

func TestJobsRejectsInvalidSpec(t *testing.T) {
	c := cluster.MustNew(1, cluster.M2_4XLarge())
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 2})
	if _, err := Jobs(c, fs, Options{}, &task.JobSpec{Name: "bad"}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestWriteThroughModeForcesWriteback(t *testing.T) {
	// The flush mode must make a write-heavy job pay for its writes.
	mkJob := func() *task.JobSpec {
		return &task.JobSpec{Name: "w", Stages: []*task.StageSpec{
			{ID: 0, Name: "w", NumTasks: 8, OpCPU: 0.1, OutputBytes: 500e6},
		}}
	}
	durations := map[Mode]float64{}
	for _, m := range []Mode{Spark, SparkWriteThrough} {
		c := cluster.MustNew(1, cluster.M2_4XLarge())
		fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 2})
		ms, err := Jobs(c, fs, Options{Mode: m}, mkJob())
		if err != nil {
			t.Fatal(err)
		}
		durations[m] = float64(ms[0].Duration())
	}
	if durations[SparkWriteThrough] <= durations[Spark] {
		t.Fatalf("flush mode %v ≤ buffered mode %v", durations[SparkWriteThrough], durations[Spark])
	}
}
