package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/resource"
)

func TestPercentileBasics(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 95); got != 7 {
		t.Errorf("Percentile(single) = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentile(s, 50)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	s := []float64{0, 10}
	if got := Percentile(s, 50); got != 5 {
		t.Fatalf("Percentile(50) = %v, want 5 (interpolated)", got)
	}
}

func TestBoxOrdering(t *testing.T) {
	s := []float64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	b := Box(s)
	if !(b.P5 <= b.P25 && b.P25 <= b.P50 && b.P50 <= b.P75 && b.P75 <= b.P95) {
		t.Fatalf("box not monotone: %+v", b)
	}
	if b.P50 != 4.5 {
		t.Fatalf("median = %v, want 4.5", b.P50)
	}
}

// Property: percentiles are bounded by min and max and monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, len(raw))
		lo, hi := math.MaxFloat64, -math.MaxFloat64
		for i, r := range raw {
			s[i] = float64(r)
			lo = math.Min(lo, s[i])
			hi = math.Max(hi, s[i])
		}
		prev := lo
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(s, p)
			if v < prev-1e-9 || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	spec := cluster.MachineSpec{
		Cores:    2,
		Disks:    []resource.DiskSpec{{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35}},
		NetBW:    100e6,
		MemBytes: 1 << 30,
	}
	c, err := cluster.New(2, spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUtilSamplesCPU(t *testing.T) {
	c := testCluster(t)
	c.Machines[0].CPU.Run(10, func() {}) // 1 of 2 cores busy for 10 s
	c.Engine.Run()
	s := UtilSamples(c, CPU, 0, 10, 5)
	if len(s) != 10 { // 5 per machine × 2 machines
		t.Fatalf("got %d samples, want 10", len(s))
	}
	if got := mean(s); math.Abs(got-0.25) > 1e-9 { // machine0 at 0.5, machine1 idle
		t.Fatalf("mean cpu util = %v, want 0.25", got)
	}
}

func TestUtilSamplesDiskAveragesDrives(t *testing.T) {
	spec := cluster.MachineSpec{
		Cores: 2,
		Disks: []resource.DiskSpec{
			{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35},
			{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35},
		},
		NetBW: 100e6, MemBytes: 1 << 30,
	}
	c, _ := cluster.New(1, spec)
	c.Machines[0].Disks[0].Read(1000e6, func() {}) // busy 10 s; disk 1 idle
	c.Engine.Run()
	s := UtilSamples(c, Disk, 0, 10, 4)
	if got := mean(s); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("mean disk util = %v, want 0.5 (1 of 2 drives busy)", got)
	}
}

func TestUtilSamplesNetworkTakesBusierDirection(t *testing.T) {
	c := testCluster(t)
	c.Fabric.Transfer(0, 1, 1000e6, func() {}) // 10 s at full rate
	c.Engine.Run()
	s := UtilSamples(c, Network, 0, 10, 4)
	// Machine 0 egress = 1, machine 1 ingress = 1: both machines report 1.
	if got := mean(s); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("mean net util = %v, want 1.0", got)
	}
}

func TestUtilSamplesBoundary(t *testing.T) {
	c := testCluster(t)
	c.Machines[0].CPU.Run(10, func() {})
	c.Engine.Run()
	// n ≤ 0 and empty or inverted windows return nil instead of panicking
	// (make([]float64, n) with negative n would otherwise abort the process).
	for _, n := range []int{0, -1, -100} {
		for _, r := range []ResourceName{CPU, Disk, Network} {
			if s := UtilSamples(c, r, 0, 10, n); s != nil {
				t.Fatalf("UtilSamples(%v, n=%d) = %v, want nil", r, n, s)
			}
		}
	}
	if s := UtilSamples(c, CPU, 10, 10, 4); s != nil {
		t.Fatalf("empty window samples = %v, want nil", s)
	}
	if s := UtilSamples(c, CPU, 10, 5, 4); s != nil {
		t.Fatalf("inverted window samples = %v, want nil", s)
	}
	if s := UtilSamples(nil, CPU, 0, 10, 4); s != nil {
		t.Fatalf("nil cluster samples = %v, want nil", s)
	}
}

func TestUtilSamplesDisklessMachine(t *testing.T) {
	// A diskless spec is legal (cluster.Validate only checks disks that
	// exist); its machines contribute no disk samples and must not skew the
	// pooled mean with zeros.
	diskless := cluster.MachineSpec{Cores: 2, NetBW: 100e6, MemBytes: 1 << 30}
	withDisk := cluster.MachineSpec{
		Cores:    2,
		Disks:    []resource.DiskSpec{{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35}},
		NetBW:    100e6,
		MemBytes: 1 << 30,
	}
	c, err := cluster.NewHetero([]cluster.MachineSpec{withDisk, diskless})
	if err != nil {
		t.Fatal(err)
	}
	c.Machines[0].Disks[0].Read(1000e6, func() {}) // busy the full 10 s window
	c.Engine.Run()
	s := UtilSamples(c, Disk, 0, 10, 4)
	if len(s) != 4 {
		t.Fatalf("got %d disk samples, want 4 (diskless machine contributes none)", len(s))
	}
	if got := mean(s); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("mean disk util = %v, want 1.0 — diskless machine diluted the mean", got)
	}
}

func TestMachineUtilSamplesGuards(t *testing.T) {
	// A hand-built machine with no devices (a telemetry caller over a
	// partially constructed spec) yields nil for every resource.
	bare := &cluster.Machine{ID: 0}
	for _, r := range []ResourceName{CPU, Disk, Network} {
		if s := MachineUtilSamples(bare, r, 0, 10, 4); s != nil {
			t.Fatalf("bare machine %v samples = %v, want nil", r, s)
		}
	}
	if s := MachineUtilSamples(nil, CPU, 0, 10, 4); s != nil {
		t.Fatalf("nil machine samples = %v, want nil", s)
	}
	// A real machine returns exactly n per-machine samples.
	c := testCluster(t)
	c.Machines[0].CPU.Run(10, func() {})
	c.Engine.Run()
	s := MachineUtilSamples(c.Machines[0], CPU, 0, 10, 5)
	if len(s) != 5 {
		t.Fatalf("got %d samples, want 5", len(s))
	}
	if got := mean(s); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("machine 0 mean cpu util = %v, want 0.5", got)
	}
	// Unknown resource names yield nil rather than a zero-filled series.
	if s := MachineUtilSamples(c.Machines[0], ResourceName("gpu"), 0, 10, 4); s != nil {
		t.Fatalf("unknown resource samples = %v, want nil", s)
	}
}

func TestStageUtilBoundary(t *testing.T) {
	c := testCluster(t)
	c.Machines[0].CPU.Run(10, func() {})
	c.Engine.Run()
	// n = 0 and empty windows degrade to an all-zero ranking, not a panic.
	for _, su := range []StageUtilization{
		StageUtil(c, 0, 10, 0),
		StageUtil(c, 5, 5, 4),
		StageUtil(c, 9, 3, 4),
	} {
		if su.BottleneckBox.P50 != 0 || su.SecondBox.P95 != 0 {
			t.Fatalf("degenerate StageUtil = %+v, want zero boxes", su)
		}
	}
}

func TestMeasureGuards(t *testing.T) {
	if u := Measure(nil, 0, 10); u != (MeasuredUsage{}) {
		t.Fatalf("Measure(nil) = %+v, want zero", u)
	}
	c := testCluster(t)
	c.Machines[0].CPU.Run(5, func() {})
	c.Engine.Run()
	if u := Measure(c, 10, 10); u != (MeasuredUsage{}) {
		t.Fatalf("empty-window Measure = %+v, want zero", u)
	}
	// A machine with no devices measures as zero instead of panicking.
	c.Machines = append(c.Machines, &cluster.Machine{ID: 2})
	u := Measure(c, 0, 10)
	if math.Abs(u.CPUSeconds-5) > 1e-6 {
		t.Fatalf("CPUSeconds with bare machine = %v, want 5", u.CPUSeconds)
	}
}

func TestStageUtilRanksResources(t *testing.T) {
	c := testCluster(t)
	// CPU fully busy on both machines; disk half busy on one.
	for _, m := range c.Machines {
		m.CPU.Run(20, func() {})
		m.CPU.Run(20, func() {})
	}
	c.Machines[0].Disks[0].Read(500e6, func() {})
	c.Engine.Run()
	su := StageUtil(c, 0, 10, 4)
	if su.Bottleneck != CPU {
		t.Fatalf("bottleneck = %v, want cpu", su.Bottleneck)
	}
	if su.Second != Disk {
		t.Fatalf("second = %v, want disk", su.Second)
	}
	if su.BottleneckBox.P50 < 0.99 {
		t.Fatalf("bottleneck median = %v, want ≈1", su.BottleneckBox.P50)
	}
}

func TestMeasureWindow(t *testing.T) {
	c := testCluster(t)
	c.Machines[0].CPU.Run(5, func() {})
	c.Machines[0].Disks[0].Read(100e6, func() {})
	c.Machines[1].Disks[0].Write(50e6, func() {})
	c.Fabric.Transfer(0, 1, 30e6, func() {})
	c.Engine.Run()
	u := Measure(c, 0, 10)
	if math.Abs(u.CPUSeconds-5) > 1e-6 {
		t.Fatalf("CPUSeconds = %v, want 5", u.CPUSeconds)
	}
	if u.DiskReadBytes != 100e6 || u.DiskWriteBytes != 50e6 {
		t.Fatalf("disk bytes = %d/%d, want 1e8/5e7", u.DiskReadBytes, u.DiskWriteBytes)
	}
	if u.NetBytes != 30e6 {
		t.Fatalf("net bytes = %d, want 3e7", u.NetBytes)
	}
	// A window after everything happened must measure zero.
	u2 := Measure(c, 100, 110)
	if u2.CPUSeconds != 0 || u2.DiskReadBytes != 0 || u2.NetBytes != 0 {
		t.Fatalf("late window measured %+v, want zeros", u2)
	}
}

func TestMeasuredUsageAdd(t *testing.T) {
	a := MeasuredUsage{CPUSeconds: 1, DiskReadBytes: 2, DiskWriteBytes: 3, NetBytes: 4}
	b := MeasuredUsage{CPUSeconds: 10, DiskReadBytes: 20, DiskWriteBytes: 30, NetBytes: 40}
	got := a.Add(b)
	want := MeasuredUsage{CPUSeconds: 11, DiskReadBytes: 22, DiskWriteBytes: 33, NetBytes: 44}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}
