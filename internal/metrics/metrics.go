// Package metrics turns device timelines and task records into the
// summaries the paper's figures report: box-plot percentiles of resource
// utilization (Fig. 6), utilization time series (Figs. 2 and 9), and
// OS-counter-style usage measurements over stage windows — the impoverished
// view of a Spark run that Figs. 16 and 17 are built from.
package metrics

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

// BoxPlot is the five-number summary used in Fig. 6: 5th/25th/50th/75th/95th
// percentiles.
type BoxPlot struct {
	P5, P25, P50, P75, P95 float64
}

// Percentile returns the p-th percentile (0..100) of samples by linear
// interpolation between closest ranks. It does not modify samples. Callers
// extracting several percentiles from one distribution should sort once and
// use SortedPercentile instead — this convenience wrapper copies and sorts on
// every call.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return SortedPercentile(s, p)
}

// SortedPercentile is Percentile for samples already in ascending order,
// skipping the per-call copy and sort.
func SortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Box summarizes samples as a BoxPlot, sorting a copy once for all five
// percentiles.
func Box(samples []float64) BoxPlot {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return BoxPlot{
		P5:  SortedPercentile(s, 5),
		P25: SortedPercentile(s, 25),
		P50: SortedPercentile(s, 50),
		P75: SortedPercentile(s, 75),
		P95: SortedPercentile(s, 95),
	}
}

// ResourceName identifies a utilization series.
type ResourceName string

const (
	// CPU is the processor utilization series.
	CPU ResourceName = "cpu"
	// Disk is the per-disk utilization series.
	Disk ResourceName = "disk"
	// Network is the NIC utilization series.
	Network ResourceName = "network"
	// Memory is the memory-bandwidth utilization series (machines with the
	// fourth-resource model enabled only).
	Memory ResourceName = "memory"
)

// UtilSamples pools utilization samples for one resource across all
// machines of c over [t0, t1): n samples per machine. Disk utilization is
// the mean across a machine's drives; network is the busier direction.
// Machines lacking the resource (diskless, no NIC) contribute nothing, and
// n ≤ 0 or an empty window returns nil — callers sampling live (the
// telemetry layer) hit both shapes routinely and must not panic or skew.
func UtilSamples(c *cluster.Cluster, r ResourceName, t0, t1 sim.Time, n int) []float64 {
	if c == nil || n <= 0 || t1 <= t0 {
		return nil
	}
	out := make([]float64, 0, len(c.Machines)*n)
	for _, m := range c.Machines {
		out = append(out, MachineUtilSamples(m, r, t0, t1, n)...)
	}
	return out
}

// MachineUtilSamples returns n utilization samples for one resource of one
// machine over [t0, t1) — the per-machine series a live per-machine view
// (cmd/monotop) renders. Disk is the mean across the machine's drives and
// network the busier NIC direction, as in UtilSamples. Returns nil when the
// machine lacks the resource, n ≤ 0, or the window is empty.
func MachineUtilSamples(m *cluster.Machine, r ResourceName, t0, t1 sim.Time, n int) []float64 {
	if m == nil || n <= 0 || t1 <= t0 {
		return nil
	}
	switch r {
	case CPU:
		if m.CPU == nil {
			return nil
		}
		return m.CPU.Util.Samples(t0, t1, n)
	case Disk:
		if len(m.Disks) == 0 {
			return nil
		}
		acc := make([]float64, n)
		for _, d := range m.Disks {
			for i, v := range d.Util.Samples(t0, t1, n) {
				acc[i] += v / float64(len(m.Disks))
			}
		}
		return acc
	case Memory:
		if m.Memory == nil {
			return nil
		}
		return m.Memory.Util.Samples(t0, t1, n)
	case Network:
		if m.NIC == nil {
			return nil
		}
		in := m.NIC.UtilIn.Samples(t0, t1, n)
		eg := m.NIC.UtilOut.Samples(t0, t1, n)
		// The two directions sample over the same window so the lengths
		// agree, but a hand-built NIC (tests, partial specs) may carry
		// uneven timelines; pairing beyond the shorter slice would panic.
		k := len(in)
		if len(eg) < k {
			k = len(eg)
		}
		out := make([]float64, k)
		for i := 0; i < k; i++ {
			if eg[i] > in[i] {
				out[i] = eg[i]
			} else {
				out[i] = in[i]
			}
		}
		return out
	}
	return nil
}

// mean averages a sample set.
func mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// StageUtilization is Fig. 6's per-stage summary: the most- and second-most
// utilized resources with box plots of their utilization.
type StageUtilization struct {
	Bottleneck    ResourceName
	BottleneckBox BoxPlot
	Second        ResourceName
	SecondBox     BoxPlot
}

// StageUtil ranks the three resources by mean utilization over [t0, t1) and
// returns box plots for the top two.
func StageUtil(c *cluster.Cluster, t0, t1 sim.Time, samplesPerMachine int) StageUtilization {
	type entry struct {
		name    ResourceName
		samples []float64
		mean    float64
	}
	entries := []entry{}
	names := []ResourceName{CPU, Disk, Network}
	for _, m := range c.Machines {
		if m.Memory != nil {
			// Only clusters that model memory rank it; on the rest the
			// series does not exist and must not perturb the top-2 ranking.
			names = append(names, Memory)
			break
		}
	}
	for _, r := range names {
		s := UtilSamples(c, r, t0, t1, samplesPerMachine)
		entries = append(entries, entry{name: r, samples: s, mean: mean(s)})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].mean > entries[j].mean })
	return StageUtilization{
		Bottleneck:    entries[0].name,
		BottleneckBox: Box(entries[0].samples),
		Second:        entries[1].name,
		SecondBox:     Box(entries[1].samples),
	}
}

// MeasuredUsage is what an external observer with OS counters can say about
// a window of cluster execution: CPU core-seconds consumed, disk bytes
// moved, network bytes received. This is the only per-stage resource
// information a Spark run exposes, and it is what the Spark-side models of
// Figs. 16–17 must work from.
type MeasuredUsage struct {
	CPUSeconds     float64
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetBytes       int64
	// MemBytes is memory-system traffic; zero (and omitted from JSON) on
	// clusters without the memory model, so existing streams stay
	// byte-identical.
	MemBytes int64 `json:"MemBytes,omitempty"`
}

// Measure snapshots cluster-wide resource use over [t0, t1). Machines
// missing a device (no CPU model, diskless, no NIC) contribute nothing for
// that resource.
func Measure(c *cluster.Cluster, t0, t1 sim.Time) MeasuredUsage {
	var u MeasuredUsage
	if c == nil || t1 <= t0 {
		return u
	}
	for _, m := range c.Machines {
		if m.CPU != nil {
			u.CPUSeconds += m.CPU.Util.Mean(t0, t1) * float64(m.CPU.Cores()) * float64(t1-t0)
		}
		for _, d := range m.Disks {
			u.DiskReadBytes += int64(d.ReadCum.Delta(t0, t1))
			u.DiskWriteBytes += int64(d.WriteCum.Delta(t0, t1))
		}
		if m.NIC != nil {
			u.NetBytes += int64(m.NIC.BytesInCum.Delta(t0, t1))
		}
		if m.Memory != nil {
			u.MemBytes += int64(m.Memory.TrafficCum.Delta(t0, t1))
		}
	}
	return u
}

// TaskSecondsInWindow sums one job's task occupancy overlapping [t0, t1) —
// the slot-seconds that Spark-side attribution splits usage by (Fig. 16),
// and the numerator of a scheduling pool's observed slot share. Task slots
// without metrics yet (attempts still in flight) are skipped, so the sum is
// safe to take mid-run.
func TaskSecondsInWindow(jm *task.JobMetrics, t0, t1 sim.Time) float64 {
	var sum float64
	for _, st := range jm.Stages {
		for _, tm := range st.Tasks {
			if tm == nil {
				continue
			}
			lo, hi := tm.Start, tm.End
			if t0 > lo {
				lo = t0
			}
			if t1 < hi {
				hi = t1
			}
			if hi > lo {
				sum += float64(hi - lo)
			}
		}
	}
	return sum
}

// Add accumulates another measurement (summing windows).
func (u MeasuredUsage) Add(v MeasuredUsage) MeasuredUsage {
	u.CPUSeconds += v.CPUSeconds
	u.DiskReadBytes += v.DiskReadBytes
	u.DiskWriteBytes += v.DiskWriteBytes
	u.NetBytes += v.NetBytes
	u.MemBytes += v.MemBytes
	return u
}

// EventMark annotates a point on the cluster timeline — a fault injection, a
// machine recovery, a policy decision — so utilization plots and traces can
// show *why* a utilization series changed shape (a crash looks identical to
// a workload phase change without the mark). internal/faults produces these
// from its injection log.
type EventMark struct {
	At      sim.Time
	Label   string
	Machine int // -1 for cluster-wide marks
}

// MarksInWindow filters marks to [t0, t1), preserving order.
func MarksInWindow(marks []EventMark, t0, t1 sim.Time) []EventMark {
	var out []EventMark
	for _, m := range marks {
		if m.At >= t0 && m.At < t1 {
			out = append(out, m)
		}
	}
	return out
}
