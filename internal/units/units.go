// Package units provides byte-count and rate constants and formatting helpers
// shared across the device models and the benchmark harness.
package units

import "fmt"

// Byte-count constants (powers of 1024, matching HDFS block-size convention).
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Rate constants in bytes per second. Network hardware is conventionally
// quoted in decimal bits per second, so Gbps uses powers of 1000.
const (
	KBps float64 = 1e3
	MBps float64 = 1e6
	GBps float64 = 1e9
)

// BitsPerSecond converts a link speed quoted in bits/s to bytes/s.
func BitsPerSecond(bits float64) float64 { return bits / 8 }

// Gbps converts a link speed quoted in gigabits/s to bytes/s.
func Gbps(g float64) float64 { return BitsPerSecond(g * 1e9) }

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "600.0 GB".
func FormatBytes(b int64) string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.1f TB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.1f GB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// FormatSeconds renders a duration in seconds as "1m 23.4s" or "12.3s".
func FormatSeconds(s float64) string {
	if s < 0 {
		return "-" + FormatSeconds(-s)
	}
	if s >= 60 {
		m := int(s) / 60
		return fmt.Sprintf("%dm %.1fs", m, s-float64(m)*60)
	}
	return fmt.Sprintf("%.1fs", s)
}
