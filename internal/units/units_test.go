package units

import "testing"

func TestByteConstants(t *testing.T) {
	if KB != 1024 || MB != 1024*1024 || GB != 1024*1024*1024 || TB != GB*1024 {
		t.Fatal("byte constants are not powers of 1024")
	}
}

func TestGbps(t *testing.T) {
	// 1 Gb/s = 125 MB/s (decimal).
	if got := Gbps(1); got != 125e6 {
		t.Fatalf("Gbps(1) = %v, want 1.25e8", got)
	}
	if got := Gbps(10); got != 1.25e9 {
		t.Fatalf("Gbps(10) = %v, want 1.25e9", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2 * KB, "2.0 KB"},
		{5 * MB, "5.0 MB"},
		{600 * GB, "600.0 GB"},
		{3 * TB, "3.0 TB"},
		{GB + GB/2, "1.5 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{12.34, "12.3s"},
		{59.99, "60.0s"},
		{60, "1m 0.0s"},
		{88 * 60, "88m 0.0s"},
		{-5, "-5.0s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
