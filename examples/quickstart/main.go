// Quickstart: word count on a 4-machine monotasks cluster, then a look at
// the per-stage resource breakdown the architecture makes trivial.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/monospark"
)

func main() {
	ctx, err := monospark.New(monospark.Config{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic corpus: in a real deployment this is an HDFS file; here
	// TextFile registers the lines as blocks spread across the cluster.
	var corpus []string
	words := []string{"monotask", "scheduler", "disk", "network", "cpu", "pipeline", "stage", "shuffle"}
	for i := 0; i < 20000; i++ {
		corpus = append(corpus, fmt.Sprintf("%s %s %s",
			words[i%len(words)], words[(i*3)%len(words)], words[(i*5+1)%len(words)]))
	}
	lines, err := ctx.TextFile("corpus", corpus, 64)
	if err != nil {
		log.Fatal(err)
	}

	counts := lines.
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).
		MapToPair(func(v any) monospark.Pair { return monospark.Pair{Key: v.(string), Value: 1} }).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) })

	records, run, err := counts.Collect()
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(records, func(i, j int) bool {
		return records[i].(monospark.Pair).Value.(int) > records[j].(monospark.Pair).Value.(int)
	})
	fmt.Println("top words:")
	for i, r := range records {
		if i == 5 {
			break
		}
		p := r.(monospark.Pair)
		fmt.Printf("  %-12s %d\n", p.Key, p.Value)
	}

	fmt.Printf("\nsimulated job time: %v\n", run.Duration())
	breakdown, err := run.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-stage ideal resource times (the §6.1 model, free with monotasks):")
	for _, st := range breakdown {
		fmt.Printf("  %-22s actual=%-10v cpu=%-10v disk=%-10v net=%-10v bottleneck=%s\n",
			st.Stage, st.Actual, st.IdealCPU, st.IdealDisk, st.IdealNet, st.Bottleneck)
	}
}
