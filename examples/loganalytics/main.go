// Log analytics: the big data benchmark's join pattern (query 3) on real
// records — join page rankings with visit logs, aggregate revenue by page,
// and compare the two execution architectures on identical application code.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/monospark"
)

// buildInputs synthesizes a rankings table and a visits log.
func buildInputs() (rankings, visits []string) {
	for p := 0; p < 2000; p++ {
		rankings = append(rankings, fmt.Sprintf("page%04d,%d", p, (p*7919)%1000))
	}
	for i := 0; i < 50000; i++ {
		page := (i * 31) % 2000
		revenue := (i*17)%500 + 1
		visits = append(visits, fmt.Sprintf("page%04d,%d.%02d", page, revenue/100, revenue%100))
	}
	return rankings, visits
}

// runQuery executes the join+aggregate under one mode and returns the top
// pages plus the simulated duration.
func runQuery(mode monospark.Mode) ([]monospark.Pair, time.Duration, error) {
	ctx, err := monospark.New(monospark.Config{Machines: 4, Mode: mode})
	if err != nil {
		return nil, 0, err
	}
	rankingLines, visitLines := buildInputs()
	rankings, err := ctx.TextFile("rankings", rankingLines, 16)
	if err != nil {
		return nil, 0, err
	}
	visits, err := ctx.TextFile("uservisits", visitLines, 32)
	if err != nil {
		return nil, 0, err
	}

	rankPairs := rankings.MapToPair(func(v any) monospark.Pair {
		parts := strings.SplitN(v.(string), ",", 2)
		return monospark.Pair{Key: parts[0], Value: parts[1]}
	})
	// Revenue in cents per visit, keyed by page.
	visitPairs := visits.MapToPair(func(v any) monospark.Pair {
		parts := strings.SplitN(v.(string), ",", 2)
		dollars := strings.SplitN(parts[1], ".", 2)
		cents := 0
		fmt.Sscanf(dollars[0], "%d", &cents)
		frac := 0
		fmt.Sscanf(dollars[1], "%d", &frac)
		return monospark.Pair{Key: parts[0], Value: cents*100 + frac}
	}).ReduceByKey(func(a, b any) any { return a.(int) + b.(int) })

	joined, err := rankPairs.Join(visitPairs)
	if err != nil {
		return nil, 0, err
	}
	// Keep pages with rank ≥ 500, scored by total revenue.
	result := joined.
		Filter(func(v any) bool {
			pair := v.(monospark.Pair).Value.([2]any)
			rank := 0
			fmt.Sscanf(pair[0].(string), "%d", &rank)
			return rank >= 500
		}).
		MapToPair(func(v any) monospark.Pair {
			p := v.(monospark.Pair)
			return monospark.Pair{Key: p.Key, Value: p.Value.([2]any)[1]}
		})

	records, run, err := result.Collect()
	if err != nil {
		return nil, 0, err
	}
	pairs := make([]monospark.Pair, len(records))
	for i, r := range records {
		pairs[i] = r.(monospark.Pair)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Value.(int) > pairs[j].Value.(int) })
	return pairs, run.Duration(), nil
}

func main() {
	var results [2][]monospark.Pair
	for i, mode := range []monospark.Mode{monospark.Monotasks, monospark.Spark} {
		pairs, dur, err := runQuery(mode)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = pairs
		fmt.Printf("%-12s %d qualifying pages in %v (simulated)\n", mode, len(pairs), dur)
	}

	// Identical application code ⇒ identical answers (§4). Note that on a
	// demo-sized input the monotasks run reports a much longer simulated
	// time: with kilobyte-scale partitions, per-monotask seek latency
	// dominates and there is nothing to pipeline across — the paper's §8
	// "jobs with few [small] tasks" limitation, visible here by design. At
	// the paper's gigabyte scale the two architectures run within ~10% of
	// each other (see cmd/monobench fig5).
	if len(results[0]) != len(results[1]) {
		log.Fatal("architectures disagree on the result!")
	}
	fmt.Println("\ntop revenue pages (identical under both architectures):")
	for i, p := range results[0] {
		if i == 5 {
			break
		}
		fmt.Printf("  %-10s $%d.%02d\n", p.Key, p.Value.(int)/100, p.Value.(int)%100)
	}
}
