// Stragglers: one machine in the cluster runs at 20% speed. The per-stage
// breakdown makes the degradation visible (the §1 question "is hardware
// degradation leading to poor performance?"), and speculative execution
// recovers most of the lost time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/monospark"
)

// runJob executes a fixed compute-heavy job and returns its simulated time.
func runJob(speeds []float64, speculate bool) (time.Duration, *monospark.JobRun, error) {
	ctx, err := monospark.New(monospark.Config{
		Machines:      4,
		MachineSpeeds: speeds,
		Speculation:   speculate,
		// A heavy per-record UDF makes the job compute-bound, so a slow
		// machine's tasks dominate the stage tail.
		CPUCostPerRecord: 50e-6,
	})
	if err != nil {
		return 0, nil, err
	}
	records := make([]any, 64000)
	for i := range records {
		records[i] = fmt.Sprintf("record-%06d", i)
	}
	ds, err := ctx.Parallelize(records, 128)
	if err != nil {
		return 0, nil, err
	}
	_, run, err := ds.
		MapToPair(func(v any) monospark.Pair {
			s := v.(string)
			return monospark.Pair{Key: s[len(s)-2:], Value: 1}
		}).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) }).
		Count()
	if err != nil {
		return 0, nil, err
	}
	return run.Duration(), run, nil
}

func main() {
	healthy, _, err := runJob(nil, false)
	if err != nil {
		log.Fatal(err)
	}
	degraded, run, err := runJob([]float64{1, 1, 1, 0.2}, false)
	if err != nil {
		log.Fatal(err)
	}
	rescued, _, err := runJob([]float64{1, 1, 1, 0.2}, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("healthy cluster:               %v\n", healthy)
	fmt.Printf("one machine at 20%% speed:      %v (%.1fx slower)\n",
		degraded, float64(degraded)/float64(healthy))
	fmt.Printf("  + speculative execution:     %v (%.1fx slower)\n",
		rescued, float64(rescued)/float64(healthy))

	// The monotask metrics show where the degraded run's time went.
	breakdown, err := run.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndegraded run, per-stage view (actual far above every ideal = stragglers):")
	for _, st := range breakdown {
		fmt.Printf("  %-24s actual=%-12v cpu=%-12v disk=%-12v net=%v\n",
			st.Stage, st.Actual, st.IdealCPU, st.IdealDisk, st.IdealNet)
	}
}
