// Terasort: the paper's sort workload in miniature — sort keyed records,
// then ask the performance model the §6 what-if questions: would more
// disks help? a bigger cluster? caching the input in memory?
package main

import (
	"fmt"
	"log"

	"repro/monospark"
	"repro/perf"
)

func main() {
	ctx, err := monospark.New(monospark.Config{
		Machines: 4,
		Hardware: monospark.Hardware{Cores: 8, HDDs: 2, NetGbps: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 200k records with 10-long values (the paper's value-size knob, §6.2).
	var lines []string
	for i := 0; i < 200000; i++ {
		key := fmt.Sprintf("%08x", (i*2654435761)%(1<<31))
		lines = append(lines, fmt.Sprintf("%s\t%080d", key, i))
	}
	input, err := ctx.TextFile("records", lines, 64)
	if err != nil {
		log.Fatal(err)
	}

	sorted := input.
		MapToPair(func(v any) monospark.Pair {
			s := v.(string)
			return monospark.Pair{Key: s[:8], Value: s[9:]}
		}).
		SortByKey()

	out, run, err := sorted.SaveAsTextFile("sorted")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d records in %v (simulated)\n", len(out), run.Duration())
	fmt.Printf("first key %q, last key %q\n", out[0][:8], out[len(out)-1][:8])

	bottleneck, _ := run.Bottleneck()
	fmt.Printf("job bottleneck: %s\n\n", bottleneck)

	fmt.Println("what-if analysis (monotasks model, §6.2-§6.4):")
	for _, q := range []struct {
		label string
		w     []perf.WhatIf
	}{
		{"2x disks per machine", []perf.WhatIf{perf.ScaleDisks(2)}},
		{"10 Gb/s network", []perf.WhatIf{perf.ScaleNetwork(10)}},
		{"4x machines", []perf.WhatIf{perf.ClusterSize(4)}},
		{"input cached in memory", []perf.WhatIf{perf.InMemoryInput()}},
		{"4x machines + in-memory input", []perf.WhatIf{perf.ClusterSize(4), perf.InMemoryInput()}},
	} {
		p, err := run.Predict(q.w...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s %v -> %v (%.2fx)\n", q.label, p.Current, p.Predicted, p.Speedup())
	}
}
