// Upgrade advisor: run a workload once, then rank candidate hardware and
// software changes by predicted benefit — the §1 questions ("what hardware
// should I run on? is it worth caching the input?") answered from one
// profiled run instead of trial-and-error cluster rentals.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/monospark"
	"repro/perf"
)

func main() {
	ctx, err := monospark.New(monospark.Config{
		Machines: 4,
		Hardware: monospark.Hardware{Cores: 8, HDDs: 2, NetGbps: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A sessionization-style workload: group events by user, score sessions.
	var events []string
	for i := 0; i < 100000; i++ {
		events = append(events, fmt.Sprintf("user%05d|event%d|%032d", (i*131)%5000, i%17, i))
	}
	input, err := ctx.TextFile("events", events, 64)
	if err != nil {
		log.Fatal(err)
	}
	sessions := input.
		MapToPair(func(v any) monospark.Pair {
			rec := v.(string)
			return monospark.Pair{Key: rec[:strings.Index(rec, "|")], Value: 1}
		}).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) })

	n, run, err := sessions.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled run: %d user sessions in %v (simulated)\n", n, run.Duration())
	if b, err := run.Bottleneck(); err == nil {
		fmt.Printf("bottleneck: %s\n\n", b)
	}

	type option struct {
		label   string
		whatifs []perf.WhatIf
	}
	options := []option{
		{"add 2 more disks/machine", []perf.WhatIf{perf.ScaleDisks(2)}},
		{"upgrade to 10 Gb/s network", []perf.WhatIf{perf.ScaleNetwork(10)}},
		{"double the cluster", []perf.WhatIf{perf.ClusterSize(2)}},
		{"quadruple the cluster", []perf.WhatIf{perf.ClusterSize(4)}},
		{"cache input in memory", []perf.WhatIf{perf.InMemoryInput()}},
		{"cache input + double cluster", []perf.WhatIf{perf.InMemoryInput(), perf.ClusterSize(2)}},
	}
	type ranked struct {
		label   string
		speedup float64
	}
	var table []ranked
	for _, o := range options {
		p, err := run.Predict(o.whatifs...)
		if err != nil {
			log.Fatal(err)
		}
		table = append(table, ranked{o.label, p.Speedup()})
	}
	sort.Slice(table, func(i, j int) bool { return table[i].speedup > table[j].speedup })

	fmt.Println("upgrade options ranked by predicted speedup:")
	for _, r := range table {
		fmt.Printf("  %-30s %.2fx\n", r.label, r.speedup)
	}

	// Bound the best case per resource (§6.5).
	fmt.Println("\nupper bounds (resource made infinitely fast):")
	for _, res := range []perf.Resource{perf.CPU, perf.Disk, perf.Network} {
		p, err := run.Predict(perf.InfinitelyFast(res))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  no %-8s %.2fx\n", res, p.Speedup())
	}
}
