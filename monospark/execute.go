package monospark

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dfs"
	"repro/internal/jobsched"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/workloads"
)

// stagePlan is one stage of a physical plan: a chain of narrow operations
// over one input (source, cache, or the shuffled output of parent stages).
// Evaluation is real — records flow through the user's functions — and the
// byte volumes and record counts observed feed the simulator's cost model.
type stagePlan struct {
	terminal   *Dataset // the dataset this stage's output materializes
	parents    []*stagePlan
	shuffleOp  *operation // set when input is shuffled from parents
	narrow     []*Dataset // narrow-op datasets applied in order after input
	partitions int

	// cacheFrom, when set, reads a previously cached dataset.
	cacheFrom *Dataset

	// Filled during evaluation.
	out         [][]any
	inputBytes  int64
	fromMem     bool
	sourceFile  *dfs.File
	records     int64 // records processed (per-op applications)
	shuffleOut  int64 // bytes this stage writes for children to fetch
	outputBytes int64 // bytes written by the action (SaveAsTextFile)
}

// plan builds the stage tree ending at d. Each call returns fresh nodes, so
// a dataset used twice in one job is evaluated twice — exactly Spark's
// behaviour for uncached lineage.
func plan(d *Dataset) *stagePlan {
	switch {
	case d.source != nil:
		return &stagePlan{terminal: d, partitions: d.partitions,
			fromMem: d.source.inMemory, sourceFile: d.source.file, inputBytes: d.source.bytes}
	case d.cached && d.cachedParts != nil:
		return &stagePlan{terminal: d, partitions: d.partitions, fromMem: true,
			cacheFrom: d, inputBytes: d.cachedBytes}
	case d.op.isShuffle():
		sp := &stagePlan{terminal: d, partitions: d.partitions, shuffleOp: &d.op}
		sp.parents = append(sp.parents, plan(d.parent))
		if d.other != nil {
			sp.parents = append(sp.parents, plan(d.other))
		}
		return sp
	default:
		sp := plan(d.parent)
		sp.narrow = append(sp.narrow, d)
		sp.terminal = d
		sp.partitions = d.partitions
		return sp
	}
}

// topo lists the stage tree parents-first.
func topo(sp *stagePlan) []*stagePlan {
	var out []*stagePlan
	var walk func(*stagePlan)
	walk = func(s *stagePlan) {
		for _, p := range s.parents {
			walk(p)
		}
		out = append(out, s)
	}
	walk(sp)
	return out
}

// evaluate runs the real data plane for every stage, filling outputs and
// measured volumes.
func evaluate(stages []*stagePlan, finalOutput bool) error {
	for _, sp := range stages {
		if err := evalStage(sp); err != nil {
			return err
		}
	}
	last := stages[len(stages)-1]
	if finalOutput {
		last.outputBytes = sizeOfParts(last.out)
	}
	// Materialize caches.
	for _, sp := range stages {
		if sp.terminal.cached && sp.terminal.cachedParts == nil {
			sp.terminal.cachedParts = sp.out
			sp.terminal.cachedBytes = sizeOfParts(sp.out)
		}
	}
	return nil
}

func evalStage(sp *stagePlan) error {
	var parts [][]any
	switch {
	case sp.shuffleOp != nil:
		var err error
		parts, err = shuffleInput(sp)
		if err != nil {
			return err
		}
	case sp.cacheFrom != nil:
		// Copy the partition slices: narrow ops replace them in place.
		parts = make([][]any, len(sp.cacheFrom.cachedParts))
		copy(parts, sp.cacheFrom.cachedParts)
	default:
		src := sourceOf(sp)
		if src == nil {
			return fmt.Errorf("monospark: stage has neither source, shuffle, nor cache input")
		}
		parts = splitRecords(src.records, sp.partitions)
	}
	// Apply the narrow chain.
	for _, ds := range sp.narrow {
		op := ds.op
		for pi, p := range parts {
			next := make([]any, 0, len(p))
			for _, rec := range p {
				sp.records++
				switch op.kind {
				case opMap:
					next = append(next, op.mapFn(rec))
				case opFlatMap:
					next = append(next, op.flatFn(rec)...)
				case opFilter:
					if op.predFn(rec) {
						next = append(next, rec)
					}
				case opMapToPair:
					next = append(next, op.pairFn(rec))
				default:
					return fmt.Errorf("monospark: unexpected narrow op %d", op.kind)
				}
			}
			parts[pi] = next
		}
		if ds.cached && ds.cachedParts == nil {
			// A mid-chain Cache(): snapshot now so later jobs can start
			// here instead of recomputing the lineage.
			snap := make([][]any, len(parts))
			copy(snap, parts)
			ds.cachedParts = snap
			ds.cachedBytes = sizeOfParts(snap)
		}
	}
	sp.out = parts
	return nil
}

// sourceOf finds the stage's root source, walking past nothing (plan keeps
// the source on the stage itself).
func sourceOf(sp *stagePlan) *sourceInfo {
	d := sp.terminal
	for d.parent != nil && !d.op.isShuffle() {
		d = d.parent
	}
	return d.source
}

// splitRecords tiles records into n contiguous partitions of near-equal size.
func splitRecords(records []any, n int) [][]any {
	parts := make([][]any, n)
	per := len(records) / n
	rem := len(records) % n
	idx := 0
	for i := 0; i < n; i++ {
		sz := per
		if i < rem {
			sz++
		}
		parts[i] = records[idx : idx+sz]
		idx += sz
	}
	return parts
}

// shuffleInput runs the map side of the stage's shuffle on each parent's
// output (combining and measuring shuffle volume), then builds the reduce
// side's input partitions.
func shuffleInput(sp *stagePlan) ([][]any, error) {
	op := sp.shuffleOp
	n := sp.partitions
	switch op.kind {
	case opReduceByKey:
		parent := sp.parents[0]
		buckets := make([]map[string]any, n)
		for i := range buckets {
			buckets[i] = make(map[string]any)
		}
		for _, part := range parent.out {
			// Map-side combine, then partition (as Spark's combiners do).
			local := make(map[string]any, len(part))
			for _, rec := range part {
				p, ok := rec.(Pair)
				if !ok {
					return nil, fmt.Errorf("monospark: ReduceByKey over non-Pair record %T", rec)
				}
				parent.records++
				if v, seen := local[p.Key]; seen {
					local[p.Key] = op.combine(v, p.Value)
				} else {
					local[p.Key] = p.Value
				}
			}
			for k, v := range local {
				parent.shuffleOut += sizeOf(Pair{Key: k, Value: v})
				b := buckets[int(fnv1a(k)%uint64(n))]
				sp.records++
				if prev, seen := b[k]; seen {
					b[k] = op.combine(prev, v)
				} else {
					b[k] = v
				}
			}
		}
		out := make([][]any, n)
		for i, b := range buckets {
			keys := make([]string, 0, len(b))
			for k := range b {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic output order
			for _, k := range keys {
				out[i] = append(out[i], Pair{Key: k, Value: b[k]})
			}
		}
		return out, nil

	case opGroupByKey:
		parent := sp.parents[0]
		buckets := make([]map[string][]any, n)
		for i := range buckets {
			buckets[i] = make(map[string][]any)
		}
		for _, part := range parent.out {
			for _, rec := range part {
				p, ok := rec.(Pair)
				if !ok {
					return nil, fmt.Errorf("monospark: GroupByKey over non-Pair record %T", rec)
				}
				parent.records++
				parent.shuffleOut += sizeOf(p)
				b := buckets[int(fnv1a(p.Key)%uint64(n))]
				sp.records++
				b[p.Key] = append(b[p.Key], p.Value)
			}
		}
		out := make([][]any, n)
		for i, b := range buckets {
			keys := make([]string, 0, len(b))
			for k := range b {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out[i] = append(out[i], Pair{Key: k, Value: b[k]})
			}
		}
		return out, nil

	case opSortByKey:
		parent := sp.parents[0]
		var all []Pair
		for _, part := range parent.out {
			for _, rec := range part {
				p, ok := rec.(Pair)
				if !ok {
					return nil, fmt.Errorf("monospark: SortByKey over non-Pair record %T", rec)
				}
				parent.records++
				parent.shuffleOut += sizeOf(p)
				all = append(all, p)
			}
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
		out := make([][]any, n)
		if len(all) == 0 {
			return out, nil // sorting nothing is legal
		}
		for i, p := range all {
			sp.records++
			out[i*n/len(all)] = append(out[i*n/len(all)], p)
		}
		return out, nil

	case opJoin:
		left, right := sp.parents[0], sp.parents[1]
		lb := make([]map[string][]any, n)
		rb := make([]map[string][]any, n)
		for i := 0; i < n; i++ {
			lb[i] = make(map[string][]any)
			rb[i] = make(map[string][]any)
		}
		fill := func(parent *stagePlan, dst []map[string][]any) error {
			for _, part := range parent.out {
				for _, rec := range part {
					p, ok := rec.(Pair)
					if !ok {
						return fmt.Errorf("monospark: Join over non-Pair record %T", rec)
					}
					parent.records++
					parent.shuffleOut += sizeOf(p)
					i := int(fnv1a(p.Key) % uint64(n))
					dst[i][p.Key] = append(dst[i][p.Key], p.Value)
				}
			}
			return nil
		}
		if err := fill(left, lb); err != nil {
			return nil, err
		}
		if err := fill(right, rb); err != nil {
			return nil, err
		}
		out := make([][]any, n)
		for i := 0; i < n; i++ {
			keys := make([]string, 0, len(lb[i]))
			for k := range lb[i] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				for _, lv := range lb[i][k] {
					for _, rv := range rb[i][k] {
						sp.records++
						out[i] = append(out[i], Pair{Key: k, Value: [2]any{lv, rv}})
					}
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("monospark: unknown shuffle op %d", op.kind)
}

// toJobSpec converts an evaluated plan into the simulator's job description.
func (c *Context) toJobSpec(name string, stages []*stagePlan) (*task.JobSpec, error) {
	job := &task.JobSpec{Name: name}
	index := make(map[*stagePlan]int, len(stages))
	for i, sp := range stages {
		index[sp] = i
		n := sp.partitions
		spec := &task.StageSpec{ID: i, Name: fmt.Sprintf("%s/stage%d", name, i), NumTasks: n}
		switch {
		case sp.shuffleOp != nil:
			var inBytes int64
			for _, p := range sp.parents {
				spec.ParentIDs = append(spec.ParentIDs, index[p])
				inBytes += p.shuffleOut
			}
			spec.DeserCPU = workloads.DeserCPUPerByte * float64(inBytes/int64(n))
		case sp.fromMem:
			spec.InputFromMem = true
			spec.InputBytesPerTask = sp.inputBytes / int64(n)
		case sp.sourceFile != nil:
			spec.InputBlocks = sp.sourceFile.Blocks
			if len(spec.InputBlocks) != n {
				return nil, fmt.Errorf("monospark: stage %d has %d blocks for %d tasks", i, len(spec.InputBlocks), n)
			}
			spec.DeserCPU = workloads.DeserCPUPerByte * float64(sp.inputBytes/int64(n))
		default:
			return nil, fmt.Errorf("monospark: stage %d has no input description", i)
		}
		spec.OpCPU = c.cfg.CPUCostPerRecord * float64(sp.records) / float64(n)
		spec.ShuffleOutBytes = sp.shuffleOut / int64(n)
		spec.OutputBytes = sp.outputBytes / int64(n)
		spec.SerCPU = workloads.SerCPUPerByte * float64((sp.shuffleOut+sp.outputBytes)/int64(n))
		job.Stages = append(job.Stages, spec)
	}
	return job, nil
}

// runJob simulates the job and returns its metrics. Under chaos the job may
// abort (retry budget exhausted, unrecoverable data loss); the driver's
// descriptive error is returned instead of a result.
func (c *Context) runJob(spec *task.JobSpec) (*task.JobMetrics, error) {
	return c.runJobContext(context.Background(), spec)
}

// runJobContext is runJob with cooperative cancellation: when ctx is
// cancelled mid-simulation the run aborts between event batches, the job is
// failed cleanly, and the Context is poisoned (see Context.aborted).
func (c *Context) runJobContext(ctx context.Context, spec *task.JobSpec) (*task.JobMetrics, error) {
	if err := c.usable(); err != nil {
		return nil, err
	}
	d, err := jobsched.NewWithConfig(c.cluster, c.fs, c.execs, c.driverConfig())
	if err != nil {
		return nil, err
	}
	if c.injector != nil {
		// The injector outlives per-job drivers: point it at this one and
		// replay machines that are currently down into its dead set.
		c.injector.Bind(d)
	}
	if c.sampler != nil {
		c.sampler.Bind(d)
	}
	h, err := d.Submit(spec)
	if err != nil {
		return nil, err
	}
	ms := c.runDriver(ctx, d)
	if err := c.aborted; err != nil {
		return nil, fmt.Errorf("monospark: %s: %w", spec.Name, err)
	}
	if err := h.Err(); err != nil {
		return nil, err
	}
	return ms[0], nil
}

// usable rejects further runs on a Context poisoned by a cancelled run.
func (c *Context) usable() error {
	if c.aborted != nil {
		return fmt.Errorf("monospark: context unusable after a cancelled run (%w); create a fresh Context", c.aborted)
	}
	return nil
}

// runDriver drains d under ctx's cancellation. On abort it fails the
// in-flight jobs with a descriptive *run.AbortError and poisons the Context.
func (c *Context) runDriver(ctx context.Context, d *jobsched.Driver) []*task.JobMetrics {
	eng := c.cluster.Engine
	if done := ctx.Done(); done != nil {
		eng.SetAbortCheck(0, func() error {
			select {
			case <-done:
				return ctx.Err()
			default:
				return nil
			}
		})
		defer eng.SetAbortCheck(0, nil)
	}
	ms := d.Run()
	if reason := eng.AbortErr(); reason != nil {
		eng.ClearAbort()
		aerr := &run.AbortError{Reason: reason, At: eng.Now()}
		d.AbortAll(aerr)
		c.aborted = aerr
	}
	return ms
}
