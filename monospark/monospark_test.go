package monospark

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/perf"
)

func testContext(t *testing.T, mode Mode) *Context {
	t.Helper()
	ctx, err := New(Config{Machines: 2, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// corpus builds deterministic text lines.
func corpus(lines int) []string {
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"}
	out := make([]string, lines)
	for i := range out {
		out[i] = words[i%len(words)] + " " + words[(i*3+1)%len(words)] + " " + words[(i*7+2)%len(words)]
	}
	return out
}

func wordCount(t *testing.T, ctx *Context) map[string]int {
	t.Helper()
	lines, err := ctx.TextFile("corpus", corpus(1000), 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := lines.
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).
		MapToPair(func(v any) Pair { return Pair{Key: v.(string), Value: 1} }).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) })
	recs, run, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if run.Duration() <= 0 {
		t.Fatal("job has non-positive simulated duration")
	}
	got := make(map[string]int)
	for _, r := range recs {
		p := r.(Pair)
		got[p.Key] = p.Value.(int)
	}
	return got
}

func TestWordCountCorrectness(t *testing.T) {
	// Ground truth computed directly.
	want := make(map[string]int)
	for _, line := range corpus(1000) {
		for _, w := range strings.Fields(line) {
			want[w]++
		}
	}
	for _, mode := range []Mode{Monotasks, Spark, SparkWithFlushedWrites} {
		ctx := testContext(t, mode)
		got := wordCount(t, ctx)
		if len(got) != len(want) {
			t.Fatalf("%v: %d distinct words, want %d", mode, len(got), len(want))
		}
		for w, n := range want {
			if got[w] != n {
				t.Fatalf("%v: count[%q] = %d, want %d", mode, got[w], n, n)
			}
		}
	}
}

func TestResultsIdenticalAcrossModes(t *testing.T) {
	// §4: "the application code running on Spark and MonoSpark is
	// identical" — results must not depend on the executor.
	a := wordCount(t, testContext(t, Monotasks))
	b := wordCount(t, testContext(t, Spark))
	if len(a) != len(b) {
		t.Fatal("modes disagree on result size")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("modes disagree on %q: %d vs %d", k, v, b[k])
		}
	}
}

func TestMapFilterChain(t *testing.T) {
	ctx := testContext(t, Monotasks)
	recs := make([]any, 100)
	for i := range recs {
		recs[i] = i
	}
	ds, err := ctx.Parallelize(recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.
		Map(func(v any) any { return v.(int) * 2 }).
		Filter(func(v any) bool { return v.(int)%4 == 0 }).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d records, want 50", len(out))
	}
	for _, v := range out {
		if v.(int)%4 != 0 {
			t.Fatalf("record %v not divisible by 4", v)
		}
	}
}

func TestCount(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize(make([]any, 123), 7)
	n, _, err := ds.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 123 {
		t.Fatalf("Count = %d, want 123", n)
	}
}

func TestReduce(t *testing.T) {
	ctx := testContext(t, Monotasks)
	recs := make([]any, 10)
	for i := range recs {
		recs[i] = i + 1
	}
	ds, _ := ctx.Parallelize(recs, 3)
	sum, _, err := ds.Reduce(func(a, b any) any { return a.(int) + b.(int) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.(int) != 55 {
		t.Fatalf("Reduce = %v, want 55", sum)
	}
}

func TestSortByKeyGloballySorted(t *testing.T) {
	ctx := testContext(t, Monotasks)
	var recs []any
	for i := 0; i < 200; i++ {
		recs = append(recs, Pair{Key: fmt.Sprintf("k%03d", (i*37)%200), Value: i})
	}
	ds, _ := ctx.Parallelize(recs, 8)
	out, _, err := ds.SortByKey().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("got %d records, want 200", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].(Pair).Key < out[i-1].(Pair).Key {
			t.Fatalf("records %d/%d out of order: %q < %q", i, i-1, out[i].(Pair).Key, out[i-1].(Pair).Key)
		}
	}
}

func TestJoin(t *testing.T) {
	ctx := testContext(t, Monotasks)
	left, _ := ctx.Parallelize([]any{
		Pair{Key: "a", Value: 1}, Pair{Key: "b", Value: 2}, Pair{Key: "c", Value: 3},
	}, 2)
	right, _ := ctx.Parallelize([]any{
		Pair{Key: "a", Value: "x"}, Pair{Key: "b", Value: "y"}, Pair{Key: "d", Value: "z"},
	}, 2)
	joined, err := left.Join(right)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][2]any{}
	for _, r := range out {
		p := r.(Pair)
		got[p.Key] = p.Value.([2]any)
	}
	if len(got) != 2 {
		t.Fatalf("join produced %d keys, want 2 (a, b)", len(got))
	}
	if got["a"] != [2]any{1, "x"} || got["b"] != [2]any{2, "y"} {
		t.Fatalf("join values wrong: %v", got)
	}
}

func TestJoinErrors(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{Pair{Key: "a", Value: 1}}, 1)
	if _, err := ds.Join(nil); err == nil {
		t.Fatal("join with nil accepted")
	}
	other := testContext(t, Monotasks)
	ds2, _ := other.Parallelize([]any{Pair{Key: "a", Value: 1}}, 1)
	if _, err := ds.Join(ds2); err == nil {
		t.Fatal("cross-context join accepted")
	}
}

func TestSaveAsTextFile(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{Pair{Key: "b", Value: 2}, Pair{Key: "a", Value: 1}}, 1)
	lines, run, err := ds.SortByKey().SaveAsTextFile("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "a\t1" || lines[1] != "b\t2" {
		t.Fatalf("lines = %v", lines)
	}
	if run.Duration() <= 0 {
		t.Fatal("save job has non-positive duration")
	}
}

func TestCacheSkipsRecomputation(t *testing.T) {
	ctx := testContext(t, Monotasks)
	evals := 0
	lines, _ := ctx.TextFile("c", corpus(400), 4)
	derived := lines.Map(func(v any) any {
		evals++
		return strings.ToUpper(v.(string))
	}).Cache()
	if _, _, err := derived.Count(); err != nil {
		t.Fatal(err)
	}
	afterFirst := evals
	if afterFirst != 400 {
		t.Fatalf("first action evaluated %d records, want 400", afterFirst)
	}
	if _, _, err := derived.Count(); err != nil {
		t.Fatal(err)
	}
	if evals != afterFirst {
		t.Fatalf("second action re-evaluated the map (%d calls); cache broken", evals)
	}
}

func TestCachedInputIsFasterAndSkipsDisk(t *testing.T) {
	ctx := testContext(t, Monotasks)
	lines, _ := ctx.TextFile("c", corpus(5000), 8)
	ds := lines.Map(func(v any) any { return v }).Cache()
	_, first, err := ds.Count()
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := ds.Count()
	if err != nil {
		t.Fatal(err)
	}
	if second.Duration() >= first.Duration() {
		t.Fatalf("cached run (%v) not faster than cold run (%v)", second.Duration(), first.Duration())
	}
}

func TestExplainAndBottleneck(t *testing.T) {
	ctx := testContext(t, Monotasks)
	got := wordCount(t, ctx)
	if len(got) == 0 {
		t.Fatal("no results")
	}
	lines, _ := ctx.TextFile("c2", corpus(2000), 8)
	_, run, err := lines.Map(func(v any) any { return v }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	bd, err := run.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != 1 {
		t.Fatalf("Explain returned %d stages, want 1", len(bd))
	}
	if bd[0].IdealDisk <= 0 {
		t.Fatal("disk ideal time should be positive for an on-disk input stage")
	}
	if _, err := run.Bottleneck(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictWhatIf(t *testing.T) {
	ctx := testContext(t, Monotasks)
	lines, _ := ctx.TextFile("c3", corpus(5000), 8)
	_, run, err := lines.Map(func(v any) any { return v }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	// A bigger cluster can only help.
	p, err := run.Predict(perf.ClusterSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Predicted > p.Current {
		t.Fatalf("4x cluster predicted slower: %v > %v", p.Predicted, p.Current)
	}
	if p.Speedup() < 1 {
		t.Fatalf("Speedup = %v, want ≥ 1", p.Speedup())
	}
	// Infinitely fast everything collapses toward zero but stays defined.
	p2, err := run.Predict(perf.InfinitelyFast(perf.Disk), perf.InfinitelyFast(perf.CPU), perf.InfinitelyFast(perf.Network))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Predicted < 0 {
		t.Fatal("negative prediction")
	}
}

func TestSparkModeRefusesModel(t *testing.T) {
	ctx := testContext(t, Spark)
	lines, _ := ctx.TextFile("c4", corpus(100), 2)
	_, run, err := lines.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Predict(perf.ScaleDisks(2)); err == nil {
		t.Fatal("Spark-mode run produced a model; only monotasks metrics can (§6.6)")
	}
	if _, err := run.Explain(); err == nil {
		t.Fatal("Spark-mode Explain should fail")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run1 := func() string {
		ctx := testContext(t, Monotasks)
		got := wordCount(t, ctx)
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += fmt.Sprintf("%s=%d;", k, got[k])
		}
		return s
	}
	if a, b := run1(), run1(); a != b {
		t.Fatal("results differ across identical runs")
	}
}

func TestConfigValidationAndDefaults(t *testing.T) {
	ctx, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Config().Machines != 4 || ctx.Config().Hardware.Cores != 8 {
		t.Fatalf("defaults not applied: %+v", ctx.Config())
	}
	if ctx.TotalCores() != 32 {
		t.Fatalf("TotalCores = %d, want 32", ctx.TotalCores())
	}
	if _, err := ctx.TextFile("x", nil, 4); err == nil {
		t.Fatal("empty text file accepted")
	}
	if _, err := ctx.Parallelize(nil, 4); err == nil {
		t.Fatal("empty parallelize accepted")
	}
}

func TestPartitionClamping(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, err := ctx.Parallelize([]any{1, 2, 3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Partitions() != 3 {
		t.Fatalf("partitions = %d, want 3 (clamped to record count)", ds.Partitions())
	}
}

func TestReduceByKeyTypeError(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{1, 2, 3}, 2)
	if _, _, err := ds.ReduceByKey(func(a, b any) any { return a }).Collect(); err == nil {
		t.Fatal("ReduceByKey over non-pairs should fail")
	}
}

func TestModeStrings(t *testing.T) {
	if Monotasks.String() != "monotasks" || Spark.String() != "spark" ||
		SparkWithFlushedWrites.String() != "spark-flushed" {
		t.Fatal("Mode.String broken")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestPairString(t *testing.T) {
	if (Pair{Key: "k", Value: 7}).String() != "k\t7" {
		t.Fatal("Pair.String broken")
	}
}

func TestTraceExport(t *testing.T) {
	ctx := testContext(t, Monotasks)
	lines, _ := ctx.TextFile("tr", corpus(500), 4)
	_, run, err := lines.Map(func(v any) any { return v }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome strings.Builder
	if err := run.WriteTraceJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := run.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"resource":"disk"`) {
		t.Fatal("JSONL trace missing disk monotasks")
	}
	if !strings.Contains(chrome.String(), "traceEvents") {
		t.Fatal("Chrome trace missing traceEvents")
	}
	// Spark runs cannot be traced.
	sctx := testContext(t, Spark)
	slines, _ := sctx.TextFile("tr2", corpus(100), 2)
	_, srun, err := slines.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := srun.WriteTraceJSONL(&jsonl); err == nil {
		t.Fatal("Spark-mode trace export should fail")
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{
		Pair{Key: "a", Value: 1}, Pair{Key: "b", Value: 2},
		Pair{Key: "a", Value: 3}, Pair{Key: "a", Value: 5},
	}, 2)
	out, _, err := ds.GroupByKey().Collect()
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string][]any{}
	for _, r := range out {
		p := r.(Pair)
		groups[p.Key] = p.Value.([]any)
	}
	if len(groups["a"]) != 3 || len(groups["b"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	sum := 0
	for _, v := range groups["a"] {
		sum += v.(int)
	}
	if sum != 9 {
		t.Fatalf("a's values sum to %d, want 9", sum)
	}
}

func TestGroupByKeyShufflesMoreThanReduceByKey(t *testing.T) {
	// The classic cost difference: no map-side combining means more shuffle
	// bytes, which the simulation prices.
	mkPairs := func() []any {
		var recs []any
		for i := 0; i < 4000; i++ {
			recs = append(recs, Pair{Key: fmt.Sprintf("k%d", i%10), Value: 1})
		}
		return recs
	}
	ctx1 := testContext(t, Monotasks)
	ds1, _ := ctx1.Parallelize(mkPairs(), 8)
	_, groupRun, err := ds1.GroupByKey().Count()
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := testContext(t, Monotasks)
	ds2, _ := ctx2.Parallelize(mkPairs(), 8)
	_, reduceRun, err := ds2.ReduceByKey(func(a, b any) any { return a.(int) + b.(int) }).Count()
	if err != nil {
		t.Fatal(err)
	}
	if groupRun.Duration() <= reduceRun.Duration() {
		t.Fatalf("GroupByKey (%v) not slower than ReduceByKey (%v) despite shuffling every record",
			groupRun.Duration(), reduceRun.Duration())
	}
}

func TestDistinct(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{3, 1, 2, 3, 1, 1, 2}, 3)
	out, _, err := ds.Distinct().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("Distinct kept %d records, want 3", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		seen[v.(int)] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("Distinct lost values: %v", out)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{
		Pair{Key: "x", Value: 1}, Pair{Key: "y", Value: 1}, Pair{Key: "x", Value: 1},
	}, 2)
	counts, _, err := ds.CountByKey()
	if err != nil {
		t.Fatal(err)
	}
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Fatalf("CountByKey = %v", counts)
	}
	bad, _ := ctx.Parallelize([]any{1, 2, 3}, 1)
	if _, _, err := bad.CountByKey(); err == nil {
		t.Fatal("CountByKey over non-pairs accepted")
	}
}

func TestSpeculationOnStragglerCluster(t *testing.T) {
	// A 4-machine cluster with one node at 20% speed: speculation should
	// recover most of the straggler's penalty.
	mkCtx := func(speculate bool) *Context {
		ctx, err := New(Config{
			Machines:      4,
			MachineSpeeds: []float64{1, 1, 1, 0.2},
			Speculation:   speculate,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	runIt := func(ctx *Context) int64 {
		recs := make([]any, 6400)
		for i := range recs {
			recs[i] = i
		}
		ds, _ := ctx.Parallelize(recs, 128)
		_, run, err := ds.Map(func(v any) any { return v }).Count()
		if err != nil {
			t.Fatal(err)
		}
		return int64(run.Duration())
	}
	plain := runIt(mkCtx(false))
	spec := runIt(mkCtx(true))
	if spec >= plain {
		t.Fatalf("speculation run (%d) not faster than plain (%d) with a straggler", spec, plain)
	}
}

func TestMachineSpeedsValidation(t *testing.T) {
	if _, err := New(Config{Machines: 2, MachineSpeeds: []float64{1, 1, 1}}); err == nil {
		t.Fatal("too many machine speeds accepted")
	}
}

func TestTextFileFromOS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(path, []byte("alpha beta\nbeta gamma\nalpha alpha\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := testContext(t, Monotasks)
	lines, err := ctx.TextFileFromOS(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts, _, err := lines.
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).
		MapToPair(func(v any) Pair { return Pair{Key: v.(string), Value: 1} }).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) }).
		CountByKey()
	if err != nil {
		t.Fatal(err)
	}
	// CountByKey counts records per key; after ReduceByKey there is one
	// record per word, so verify via Collect instead.
	if len(counts) != 3 {
		t.Fatalf("distinct words = %d, want 3", len(counts))
	}
	if _, err := ctx.TextFileFromOS(filepath.Join(dir, "missing.txt"), 2); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestShufflesOverEmptyDatasets(t *testing.T) {
	ctx := testContext(t, Monotasks)
	src, _ := ctx.Parallelize([]any{Pair{Key: "a", Value: 1}}, 1)
	empty := src.Filter(func(any) bool { return false })
	for name, ds := range map[string]*Dataset{
		"sort":   empty.SortByKey(),
		"reduce": empty.ReduceByKey(func(a, b any) any { return a }),
		"group":  empty.GroupByKey(),
	} {
		n, _, err := ds.Count()
		if err != nil {
			t.Fatalf("%s over empty dataset: %v", name, err)
		}
		if n != 0 {
			t.Fatalf("%s over empty dataset counted %d", name, n)
		}
	}
}
