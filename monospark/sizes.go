package monospark

import "fmt"

// sizeOf estimates a record's serialized size in bytes. The estimate prices
// simulated I/O and serde time; it uses the obvious wire sizes for common
// types and falls back to the formatted length.
func sizeOf(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 1
	case string:
		return int64(len(x)) + 1
	case []byte:
		return int64(len(x))
	case bool:
		return 1
	case int, int64, uint64, float64, int32, uint32, float32:
		return 8
	case Pair:
		return int64(len(x.Key)) + 1 + sizeOf(x.Value)
	case [2]any:
		return sizeOf(x[0]) + sizeOf(x[1])
	case []any:
		var sum int64
		for _, e := range x {
			sum += sizeOf(e)
		}
		return sum
	default:
		return int64(len(fmt.Sprint(x)))
	}
}

// sizeOfRecords sums sizeOf over a slice.
func sizeOfRecords(records []any) int64 {
	var sum int64
	for _, r := range records {
		sum += sizeOf(r)
	}
	return sum
}

// sizeOfParts sums sizeOf over partitioned records.
func sizeOfParts(parts [][]any) int64 {
	var sum int64
	for _, p := range parts {
		sum += sizeOfRecords(p)
	}
	return sum
}

// fnv1a hashes a key for partitioning (deterministic across runs).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
