package monospark

import (
	"fmt"

	"repro/internal/dfs"
)

// opKind enumerates the transformations.
type opKind int

const (
	opMap opKind = iota
	opFlatMap
	opFilter
	opMapToPair
	opReduceByKey
	opSortByKey
	opJoin
	opGroupByKey
)

// operation is one lineage step.
type operation struct {
	kind    opKind
	mapFn   func(any) any
	flatFn  func(any) []any
	predFn  func(any) bool
	pairFn  func(any) Pair
	combine func(a, b any) any
}

// isShuffle reports whether the operation is a stage boundary.
func (o *operation) isShuffle() bool {
	switch o.kind {
	case opReduceByKey, opSortByKey, opJoin, opGroupByKey:
		return true
	default:
		return false
	}
}

// sourceInfo describes a root dataset's storage.
type sourceInfo struct {
	records  []any
	bytes    int64
	file     *dfs.File // nil when inMemory
	inMemory bool
}

// Dataset is a distributed collection with lineage, like an RDD. Datasets
// are immutable: every transformation returns a new one.
type Dataset struct {
	ctx        *Context
	id         int
	partitions int

	// Exactly one of source / parent is set; join has a second parent.
	source *sourceInfo
	parent *Dataset
	other  *Dataset // Join's right side
	op     operation

	// cache state (set by Cache, filled on first evaluation)
	cached      bool
	cachedParts [][]any
	cachedBytes int64
}

// Partitions reports the dataset's partition count.
func (d *Dataset) Partitions() int { return d.partitions }

// derive chains a narrow or shuffle operation.
func (d *Dataset) derive(op operation, partitions int) *Dataset {
	nd := d.ctx.newDataset(partitions)
	nd.parent = d
	nd.op = op
	return nd
}

// Map applies f to every record.
func (d *Dataset) Map(f func(any) any) *Dataset {
	return d.derive(operation{kind: opMap, mapFn: f}, d.partitions)
}

// FlatMap applies f and flattens the results.
func (d *Dataset) FlatMap(f func(any) []any) *Dataset {
	return d.derive(operation{kind: opFlatMap, flatFn: f}, d.partitions)
}

// Filter keeps records for which pred is true.
func (d *Dataset) Filter(pred func(any) bool) *Dataset {
	return d.derive(operation{kind: opFilter, predFn: pred}, d.partitions)
}

// MapToPair converts records to keyed Pairs, enabling the by-key
// operations.
func (d *Dataset) MapToPair(f func(any) Pair) *Dataset {
	return d.derive(operation{kind: opMapToPair, pairFn: f}, d.partitions)
}

// ReduceByKey shuffles Pairs by key and combines values with f (which must
// be associative and commutative). Map-side combining runs before the
// shuffle, as in Spark. Records must be Pairs.
func (d *Dataset) ReduceByKey(f func(a, b any) any) *Dataset {
	return d.derive(operation{kind: opReduceByKey, combine: f}, d.partitions)
}

// ReduceByKeyWithPartitions is ReduceByKey with an explicit reducer count.
func (d *Dataset) ReduceByKeyWithPartitions(f func(a, b any) any, partitions int) *Dataset {
	if partitions <= 0 {
		partitions = d.partitions
	}
	return d.derive(operation{kind: opReduceByKey, combine: f}, partitions)
}

// GroupByKey shuffles Pairs by key and gathers each key's values into a
// single Pair{Key, []any}. Unlike ReduceByKey there is no map-side
// combining, so the full value set crosses the network — the classic
// GroupByKey-vs-ReduceByKey cost difference is visible in the run's
// metrics.
func (d *Dataset) GroupByKey() *Dataset {
	return d.derive(operation{kind: opGroupByKey}, d.partitions)
}

// Distinct removes duplicate records (compared by their formatted value).
// It is sugar for a key-by-identity ReduceByKey, and costs a shuffle.
func (d *Dataset) Distinct() *Dataset {
	return d.
		MapToPair(func(v any) Pair { return Pair{Key: fmt.Sprint(v), Value: v} }).
		ReduceByKey(func(a, _ any) any { return a }).
		Map(func(v any) any { return v.(Pair).Value })
}

// SortByKey shuffles Pairs into key ranges and sorts within each partition,
// yielding a globally sorted dataset (partition i's keys all precede
// partition i+1's).
func (d *Dataset) SortByKey() *Dataset {
	return d.derive(operation{kind: opSortByKey}, d.partitions)
}

// Join inner-joins two Pair datasets by key. The result holds
// Pair{Key, [2]any{left, right}} for every matching value combination.
func (d *Dataset) Join(other *Dataset) (*Dataset, error) {
	if other == nil {
		return nil, fmt.Errorf("monospark: join with nil dataset")
	}
	if other.ctx != d.ctx {
		return nil, fmt.Errorf("monospark: join across contexts")
	}
	nd := d.derive(operation{kind: opJoin}, d.partitions)
	nd.other = other
	return nd, nil
}

// Cache marks the dataset to be kept in memory, deserialized, after its
// first evaluation — later jobs read it without disk I/O or
// deserialization cost (§6.3's software change).
func (d *Dataset) Cache() *Dataset {
	d.cached = true
	return d
}
