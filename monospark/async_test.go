package monospark

import (
	"strings"
	"testing"
	"time"
)

// asyncContext builds a Context with two weighted pools for async tests.
func asyncContext(t *testing.T) *Context {
	t.Helper()
	ctx, err := New(Config{
		Machines: 2,
		Pools: []PoolConfig{
			{Name: "prod", Weight: 3},
			{Name: "adhoc", Weight: 1, Policy: PoolFIFO},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// wordCountDataset builds the standard word-count lineage over n lines.
func wordCountDataset(t *testing.T, ctx *Context, n int) *Dataset {
	t.Helper()
	lines, err := ctx.TextFile("corpus", corpus(n), 8)
	if err != nil {
		t.Fatal(err)
	}
	return lines.
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).
		MapToPair(func(v any) Pair { return Pair{Key: v.(string), Value: 1} }).
		ReduceByKey(func(a, b any) any { return a.(int) + b.(int) })
}

// TestAsyncMatchesSync submits several jobs concurrently across pools and
// checks every result matches the synchronous run of the same lineage.
func TestAsyncMatchesSync(t *testing.T) {
	ctx := asyncContext(t)

	want := make(map[string]int)
	for _, line := range corpus(500) {
		for _, w := range strings.Fields(line) {
			want[w]++
		}
	}

	var actions []*AsyncAction
	for _, pool := range []string{"prod", "adhoc", "prod", ""} {
		a, err := wordCountDataset(t, ctx, 500).CollectAsync(JobOptions{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if a.Done() {
			t.Fatal("action reports done before Await")
		}
		actions = append(actions, a)
	}
	runs, err := ctx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(actions) {
		t.Fatalf("Await returned %d runs, want %d", len(runs), len(actions))
	}
	for _, a := range actions {
		if !a.Done() {
			t.Fatalf("%s not done after Await", a.Name)
		}
		recs, err := a.Records()
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]int)
		for _, r := range recs {
			p := r.(Pair)
			got[p.Key] = p.Value.(int)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct words, want %d", a.Name, len(got), len(want))
		}
		for w, n := range want {
			if got[w] != n {
				t.Fatalf("%s: count[%q] = %d, want %d", a.Name, w, got[w], n)
			}
		}
		run, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if run.Duration() <= 0 {
			t.Fatalf("%s: non-positive duration", a.Name)
		}
	}
	// Concurrent jobs on a shared cluster interleave: each job's wall time
	// exceeds what it gets alone, so Explain-style profiles must still work.
	if _, err := runs[0].Explain(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCount checks the CountAsync action.
func TestAsyncCount(t *testing.T) {
	ctx := asyncContext(t)
	recs := make([]any, 200)
	for i := range recs {
		recs[i] = i
	}
	data, err := ctx.Parallelize(recs, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := data.CountAsync(JobOptions{Pool: "prod", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Count(); err == nil {
		t.Fatal("Count before Await should fail")
	}
	if _, err := ctx.Await(); err != nil {
		t.Fatal(err)
	}
	n, err := a.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("count = %d, want 200", n)
	}
}

// TestAsyncUndeclaredPool checks the submit error surfaces on the action and
// from Await without poisoning the rest of the batch.
func TestAsyncUndeclaredPool(t *testing.T) {
	ctx := asyncContext(t)
	bad, err := wordCountDataset(t, ctx, 100).CollectAsync(JobOptions{Pool: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := wordCountDataset(t, ctx, 100).CollectAsync(JobOptions{Pool: "prod"})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := ctx.Await()
	if err == nil {
		t.Fatal("Await should report the undeclared pool")
	}
	if len(runs) != 1 {
		t.Fatalf("got %d successful runs, want 1", len(runs))
	}
	if bad.Err() == nil || !strings.Contains(bad.Err().Error(), "nope") {
		t.Fatalf("bad action error = %v, want undeclared-pool error", bad.Err())
	}
	if _, err := good.Records(); err != nil {
		t.Fatalf("good action failed: %v", err)
	}
}

// TestAsyncDeterministic checks two identical contexts produce bit-identical
// concurrent schedules.
func TestAsyncDeterministic(t *testing.T) {
	durations := func() []time.Duration {
		ctx := asyncContext(t)
		for _, pool := range []string{"prod", "adhoc", "prod"} {
			if _, err := wordCountDataset(t, ctx, 400).CollectAsync(JobOptions{Pool: pool}); err != nil {
				t.Fatal(err)
			}
		}
		runs, err := ctx.Await()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, len(runs))
		for i, r := range runs {
			out[i] = r.Duration()
		}
		return out
	}
	a, b := durations(), durations()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestAsyncAttribution checks the N-job attribution sums shares to 1 per
// used resource and assigns every job positive CPU.
func TestAsyncAttribution(t *testing.T) {
	ctx := asyncContext(t)
	for _, pool := range []string{"prod", "adhoc"} {
		if _, err := wordCountDataset(t, ctx, 600).CollectAsync(JobOptions{Pool: pool}); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := ctx.Await()
	if err != nil {
		t.Fatal(err)
	}
	end := 0.0
	for _, r := range runs {
		if s := r.Duration().Seconds(); s > end {
			end = s
		}
	}
	att, err := ctx.Attribution(runs, 0, end+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(att) != len(runs) {
		t.Fatalf("got %d attributions, want %d", len(att), len(runs))
	}
	var cpu float64
	for _, a := range att {
		if a.Usage.CPUSeconds <= 0 {
			t.Fatalf("job %s attributed no CPU", a.Name)
		}
		cpu += a.CPUShare
	}
	if cpu < 0.999 || cpu > 1.001 {
		t.Fatalf("CPU shares sum to %.4f, want 1", cpu)
	}
}
