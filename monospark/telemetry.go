package monospark

import (
	"repro/internal/telemetry"
)

// Live telemetry re-exports: Config.Telemetry attaches a deterministic
// in-run sampler to the Context's cluster, and Context.Telemetry exposes it.
// The types live in internal/telemetry; the aliases make them usable outside
// the module.
type (
	// TelemetryConfig tunes the sampler (virtual-time interval, ring size,
	// sampling density, streaming hook). The zero value samples every virtual
	// second into a 4096-snapshot ring.
	TelemetryConfig = telemetry.Config
	// TelemetrySnapshot is one captured moment: per-machine utilization,
	// per-pool scheduler state, per-job live attribution, and the window's
	// bottleneck ranking.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySampler owns the snapshot ring; read it with Snapshots or
	// Latest, or stream with TelemetryConfig.OnSnapshot.
	TelemetrySampler = telemetry.Sampler
)

// Telemetry returns the Context's live sampler, or nil unless
// Config.Telemetry enabled it. Snapshots accumulate across every job run on
// the Context — including aborted chaos runs — in one virtual-time stream:
//
//	ctx, _ := monospark.New(monospark.Config{Telemetry: &monospark.TelemetryConfig{}})
//	... run jobs ...
//	for _, s := range ctx.Telemetry().Snapshots() { fmt.Print(monospark.RenderTelemetry(&s)) }
func (c *Context) Telemetry() *TelemetrySampler { return c.sampler }

// RenderTelemetry formats one snapshot as the top(1)-style text view
// cmd/monotop shows.
func RenderTelemetry(s *TelemetrySnapshot) string { return telemetry.Render(s) }
