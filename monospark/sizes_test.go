package monospark

import (
	"testing"
	"testing/quick"
)

func TestSizeOfCommonTypes(t *testing.T) {
	cases := []struct {
		in   any
		want int64
	}{
		{nil, 1},
		{"abc", 4}, // length + newline-ish terminator
		{[]byte{1, 2, 3}, 3},
		{true, 1},
		{42, 8},
		{int64(42), 8},
		{3.14, 8},
		{Pair{Key: "ab", Value: 1}, 2 + 1 + 8},
		{[2]any{1, "x"}, 8 + 2},
		{[]any{1, 2}, 16},
		{struct{ X int }{7}, int64(len("{7}"))},
	}
	for _, c := range cases {
		if got := sizeOf(c.in); got != c.want {
			t.Errorf("sizeOf(%#v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSizeOfRecordsAndParts(t *testing.T) {
	recs := []any{"ab", "cd"}
	if got := sizeOfRecords(recs); got != 6 {
		t.Fatalf("sizeOfRecords = %d, want 6", got)
	}
	if got := sizeOfParts([][]any{recs, {"e"}}); got != 8 {
		t.Fatalf("sizeOfParts = %d, want 8", got)
	}
}

func TestFNV1ADeterministicAndSpread(t *testing.T) {
	if fnv1a("hello") != fnv1a("hello") {
		t.Fatal("hash not deterministic")
	}
	if fnv1a("hello") == fnv1a("world") {
		t.Fatal("suspicious collision")
	}
	// Spread: hashing 1000 keys into 8 buckets should hit every bucket.
	buckets := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		buckets[fnv1a(string(rune('a'+i%26)))%8]++
	}
	if len(buckets) < 6 {
		t.Fatalf("only %d of 8 buckets used", len(buckets))
	}
}

func TestSplitRecordsTiles(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%200 + 1
		p := int(pRaw)%n + 1
		recs := make([]any, n)
		for i := range recs {
			recs[i] = i
		}
		parts := splitRecords(recs, p)
		if len(parts) != p {
			return false
		}
		total := 0
		prevMax := -1
		for _, part := range parts {
			total += len(part)
			for _, r := range part {
				if r.(int) <= prevMax {
					return false // order violated
				}
				prevMax = r.(int)
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanFusesNarrowChains(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{1, 2, 3, 4}, 2)
	chained := ds.
		Map(func(v any) any { return v }).
		Filter(func(v any) bool { return true }).
		Map(func(v any) any { return v })
	sp := plan(chained)
	if len(sp.narrow) != 3 {
		t.Fatalf("narrow chain length %d, want 3 (fused into one stage)", len(sp.narrow))
	}
	if len(topo(sp)) != 1 {
		t.Fatalf("narrow-only lineage should plan to 1 stage")
	}
}

func TestPlanCutsAtShuffles(t *testing.T) {
	ctx := testContext(t, Monotasks)
	ds, _ := ctx.Parallelize([]any{Pair{Key: "a", Value: 1}}, 1)
	twoShuffles := ds.
		ReduceByKey(func(a, b any) any { return a }).
		Map(func(v any) any { return v }).
		SortByKey()
	stages := topo(plan(twoShuffles))
	if len(stages) != 3 {
		t.Fatalf("planned %d stages, want 3 (source, reduce, sort)", len(stages))
	}
	if stages[1].shuffleOp == nil || stages[2].shuffleOp == nil {
		t.Fatal("shuffle stages missing their ops")
	}
	if len(stages[1].narrow) != 1 {
		t.Fatalf("middle stage should carry the fused Map, has %d narrow ops", len(stages[1].narrow))
	}
}

func TestPlanJoinHasTwoParents(t *testing.T) {
	ctx := testContext(t, Monotasks)
	a, _ := ctx.Parallelize([]any{Pair{Key: "k", Value: 1}}, 1)
	b, _ := ctx.Parallelize([]any{Pair{Key: "k", Value: 2}}, 1)
	j, err := a.Join(b)
	if err != nil {
		t.Fatal(err)
	}
	sp := plan(j)
	if len(sp.parents) != 2 {
		t.Fatalf("join stage has %d parents, want 2", len(sp.parents))
	}
	if len(topo(sp)) != 3 {
		t.Fatalf("join lineage should plan to 3 stages")
	}
}
