package monospark

import (
	"context"
	"fmt"

	"repro/internal/jobsched"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/task"
)

// Multi-job scheduling re-exports: pools are declared in Config.Pools and jobs
// are tagged with JobOptions at async submission. The types live in
// internal/jobsched; the aliases make them usable outside the module.
type (
	// PoolConfig declares one scheduling pool (name, fair-share weight,
	// intra-pool policy, admission limit).
	PoolConfig = jobsched.PoolConfig
	// PoolPolicy orders jobs within one pool.
	PoolPolicy = jobsched.PoolPolicy
	// JobAttribution is one job's share of the cluster use measured over a
	// window, with the per-resource shares each job was responsible for.
	JobAttribution = model.JobAttribution
)

// Pool policies, re-exported for Config.Pools.
const (
	PoolFairShare = jobsched.FairShare
	PoolFIFO      = jobsched.FIFO
)

// DefaultPool is where untagged jobs run (always exists).
const DefaultPool = jobsched.DefaultPool

// JobOptions tags one async submission for the multi-tenant scheduler.
type JobOptions struct {
	// Pool names the scheduling pool (DefaultPool when empty). The pool must
	// be declared in Config.Pools unless it is DefaultPool.
	Pool string
	// Priority orders jobs within their pool; higher dispatches first.
	Priority int
	// DeadlineSeconds is the job's target completion time in virtual seconds;
	// at equal priority, earlier deadlines dispatch first (0 = none).
	DeadlineSeconds float64
}

// AsyncAction is a job submitted with an Async action but not yet simulated.
// Its data plane has already run (records flowed through your functions when
// the Async method returned); the virtual cluster executes it — concurrently
// with every other pending action — when Context.Await is called.
type AsyncAction struct {
	Name string
	Opts JobOptions

	ctx    *Context
	spec   *task.JobSpec
	stages []*stagePlan
	done   bool
	err    error
	run    *JobRun
}

// CollectAsync queues the dataset for concurrent execution; the records and
// performance profile become available after Context.Await.
func (d *Dataset) CollectAsync(opts JobOptions) (*AsyncAction, error) {
	return d.ctx.submitAsync(d, "collect", false, opts)
}

// CountAsync queues a count of the dataset for concurrent execution.
func (d *Dataset) CountAsync(opts JobOptions) (*AsyncAction, error) {
	return d.ctx.submitAsync(d, "count", false, opts)
}

// submitAsync evaluates the data plane now and parks the priced job spec on
// the Context until Await builds the shared multi-job driver.
func (c *Context) submitAsync(d *Dataset, action string, writesOutput bool, opts JobOptions) (*AsyncAction, error) {
	c.jobSeq++
	name := fmt.Sprintf("job%d-%s", c.jobSeq, action)
	stages := topo(plan(d))
	if err := evaluate(stages, writesOutput); err != nil {
		return nil, err
	}
	spec, err := c.toJobSpec(name, stages)
	if err != nil {
		return nil, err
	}
	a := &AsyncAction{Name: name, Opts: opts, ctx: c, spec: spec, stages: stages}
	c.pendingAsync = append(c.pendingAsync, a)
	return a, nil
}

// Await runs every pending async action on one shared driver: the jobs
// compete for executor slots under the pool weights declared in Config.Pools,
// exactly like concurrent jobs on one Spark cluster. It returns the JobRuns
// of the actions that succeeded (in submission order) and the first error any
// action hit; per-action results stay available on each AsyncAction either
// way. Await with nothing pending is a no-op.
func (c *Context) Await() ([]*JobRun, error) {
	return c.AwaitContext(context.Background())
}

// AwaitContext is Await with cooperative cancellation: if ctx is cancelled
// while the shared driver is simulating, the batch aborts between event
// batches — every in-flight action fails with an error that unwraps to the
// context's, completed actions keep their results, and the Context becomes
// unusable for further runs (its engine holds the aborted jobs' undrained
// events; create a fresh Context to continue).
func (c *Context) AwaitContext(ctx context.Context) ([]*JobRun, error) {
	if len(c.pendingAsync) == 0 {
		return nil, nil
	}
	if err := c.usable(); err != nil {
		return nil, err
	}
	batch := c.pendingAsync
	c.pendingAsync = nil
	d, err := jobsched.NewWithConfig(c.cluster, c.fs, c.execs, c.driverConfig())
	if err != nil {
		return nil, err
	}
	if c.injector != nil {
		c.injector.Bind(d)
	}
	if c.sampler != nil {
		c.sampler.Bind(d)
	}
	handles := make([]*jobsched.JobHandle, len(batch))
	var firstErr error
	for i, a := range batch {
		h, err := d.SubmitWith(a.spec, jobsched.SubmitOptions{
			Pool:     a.Opts.Pool,
			Priority: a.Opts.Priority,
			Deadline: sim.Time(a.Opts.DeadlineSeconds),
		})
		if err != nil {
			a.done, a.err = true, err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		handles[i] = h
	}
	c.runDriver(ctx, d)
	if aerr := c.aborted; aerr != nil && firstErr == nil {
		firstErr = aerr
	}
	var runs []*JobRun
	for i, a := range batch {
		h := handles[i]
		if h == nil {
			continue
		}
		a.done = true
		if err := h.Err(); err != nil {
			a.err = err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		a.run = &JobRun{
			Name:     a.Name,
			Mode:     c.cfg.Mode,
			metrics:  h.Metrics,
			faultLog: c.FaultEvents(),
			res:      model.ClusterResources(c.cluster),
		}
		runs = append(runs, a.run)
	}
	return runs, firstErr
}

// Done reports whether the action has been executed by Await.
func (a *AsyncAction) Done() bool { return a.done }

// Err returns the action's failure, if any (nil before Await).
func (a *AsyncAction) Err() error { return a.err }

// Run returns the action's performance record once Await has executed it.
func (a *AsyncAction) Run() (*JobRun, error) {
	if !a.done {
		return nil, fmt.Errorf("monospark: %s not yet executed; call Context.Await", a.Name)
	}
	if a.err != nil {
		return nil, a.err
	}
	return a.run, nil
}

// Records returns the action's output records (partition order), once
// executed. For CountAsync actions prefer Count.
func (a *AsyncAction) Records() ([]any, error) {
	if _, err := a.Run(); err != nil {
		return nil, err
	}
	last := a.stages[len(a.stages)-1]
	var out []any
	for _, p := range last.out {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the action's output record count, once executed.
func (a *AsyncAction) Count() (int64, error) {
	if _, err := a.Run(); err != nil {
		return 0, err
	}
	var n int64
	for _, p := range a.stages[len(a.stages)-1].out {
		n += int64(len(p))
	}
	return n, nil
}

// Attribution splits the cluster use measured over virtual seconds [t0, t1)
// among the given concurrent runs, reporting each job's exact per-resource
// share (the §6.4 / Fig. 16 accounting, generalized to N jobs). Monotasks
// runs only: the Spark modes don't record the per-resource spans this needs.
func (c *Context) Attribution(runs []*JobRun, t0, t1 float64) ([]JobAttribution, error) {
	jms := make([]*task.JobMetrics, len(runs))
	for i, r := range runs {
		if r.Mode != Monotasks {
			return nil, fmt.Errorf("monospark: %v runs have no per-resource metrics to attribute", r.Mode)
		}
		jms[i] = r.metrics
	}
	return model.Attribute(jms, sim.Time(t0), sim.Time(t1), model.ClusterResources(c.cluster)), nil
}
