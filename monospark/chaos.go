package monospark

import (
	"repro/internal/faults"
	"repro/internal/jobsched"
	"repro/internal/sim"
)

// The fault-plan vocabulary lives in internal/faults; these aliases re-export
// it so callers outside the module can build explicit plans and size random
// ones without importing an internal path.
type (
	// FaultPlan is an explicit fault schedule (alias of the internal type).
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault in a FaultPlan.
	FaultEvent = faults.Event
	// FaultKind enumerates fault event types (FaultMachineCrash, ...).
	FaultKind = faults.Kind
	// FaultPlanConfig sizes a randomly drawn plan.
	FaultPlanConfig = faults.PlanConfig
	// FaultRecord is one injected fault as it happened.
	FaultRecord = faults.Record
)

// Fault kinds, re-exported for building explicit FaultPlans.
const (
	FaultMachineCrash     = faults.MachineCrash
	FaultMachineRecover   = faults.MachineRecover
	FaultMachineSlowdown  = faults.MachineSlowdown
	FaultDiskDegrade      = faults.DiskDegrade
	FaultNICDegrade       = faults.NICDegrade
	FaultDiskErrorWindow  = faults.DiskErrorWindow
	FaultFlakyFetchWindow = faults.FlakyFetchWindow
	FaultTaskKill         = faults.TaskKill
)

// ChaosConfig switches on deterministic fault injection for every job the
// Context runs: machines crash and rejoin, devices degrade, attempts suffer
// transient errors — all at exact virtual times reproduced bit-identically
// by the same seed. Jobs either complete correctly (the data plane is real,
// so results are checkable) or fail with a descriptive error from the
// action; they never hang or panic.
type ChaosConfig struct {
	// Seed drives random plan generation (when Plan is nil) and the
	// injector's per-attempt coin flips.
	Seed int64
	// Plan, when non-nil, is an explicit fault schedule. A zero Plan.Seed is
	// replaced by Seed so coin flips stay tied to the chaos seed.
	Plan *FaultPlan
	// Random sizes the randomly drawn plan used when Plan is nil; Machines
	// defaults to the Context's machine count.
	Random FaultPlanConfig
	// MaxTaskFailures, ExcludeAfterFailures, and FetchRetryTimeout override
	// the driver's resilience defaults (see jobsched.Config); zero keeps
	// each default.
	MaxTaskFailures      int
	ExcludeAfterFailures int
	FetchRetryTimeout    float64
}

// initChaos builds and installs the fault injector. Called once by New,
// before executors exist and before the engine has advanced.
func (c *Context) initChaos() error {
	ch := c.cfg.Chaos
	var plan faults.Plan
	if ch.Plan != nil {
		plan = *ch.Plan
		if plan.Seed == 0 {
			plan.Seed = ch.Seed
		}
	} else {
		rc := ch.Random
		if rc.Machines <= 0 {
			rc.Machines = c.cfg.Machines
		}
		var err error
		plan, err = faults.RandomPlan(ch.Seed, rc)
		if err != nil {
			return err
		}
	}
	inj, err := faults.NewInjector(c.cluster, plan)
	if err != nil {
		return err
	}
	inj.Install()
	c.injector = inj
	return nil
}

// driverConfig is the per-job driver policy derived from the Context config.
func (c *Context) driverConfig() jobsched.Config {
	cfg := jobsched.Config{
		Speculation:    c.cfg.Speculation,
		Pools:          c.cfg.Pools,
		WorkerDispatch: c.cfg.WorkerDispatch,
	}
	if ch := c.cfg.Chaos; ch != nil {
		cfg.MaxTaskFailures = ch.MaxTaskFailures
		cfg.ExcludeAfterFailures = ch.ExcludeAfterFailures
		cfg.FetchRetryTimeout = sim.Duration(ch.FetchRetryTimeout)
	}
	return cfg
}

// FaultEvents returns the faults injected so far across all jobs run on
// this Context, in injection order. Empty unless Config.Chaos is set.
func (c *Context) FaultEvents() []FaultRecord {
	if c.injector == nil {
		return nil
	}
	return c.injector.Log()
}
