// Package monospark is a Spark-like data analytics framework whose workers
// execute jobs as monotasks — units of work that each use exactly one of
// CPU, disk, or network — the architecture of "Monotasks: Architecting for
// Performance Clarity in Data Analytics Frameworks" (SOSP 2017).
//
// A Context owns a virtual cluster. Datasets are built with the familiar
// transformations (Map, FlatMap, Filter, ReduceByKey, SortByKey, Join) and
// evaluated by actions (Collect, Count, SaveAsTextFile). The data plane is
// real — records genuinely flow through your functions — while time is
// virtual: a deterministic simulator prices every disk read, network fetch,
// and compute step on the configured hardware, so each job returns both its
// results and a full per-monotask performance profile.
//
// Because resource use is explicitly separated, a finished job can answer
// what-if questions directly (see JobRun.Predict and the perf package):
//
//	ctx, _ := monospark.New(monospark.Config{Machines: 4})
//	lines := ctx.TextFile("corpus", corpusLines, 64)
//	counts := lines.
//		FlatMap(func(v any) []any { ... }).
//		MapToPair(func(v any) monospark.Pair { ... }).
//		ReduceByKey(func(a, b any) any { ... })
//	result, run, _ := counts.Collect()
//	faster := run.Predict(perf.ClusterSize(4), perf.InMemoryInput())
package monospark

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/units"
)

// Mode selects the execution architecture.
type Mode int

const (
	// Monotasks decomposes each task into single-resource monotasks with
	// per-resource schedulers — the paper's architecture, and the only mode
	// that produces full per-monotask metrics.
	Monotasks Mode = iota
	// Spark emulates Spark 1.3: slot scheduling, fine-grained pipelining
	// inside each task, buffer-cache writes.
	Spark
	// SparkWithFlushedWrites is Spark with the OS forced to write dirty
	// data to disk promptly.
	SparkWithFlushedWrites
)

// String names the executor mode.
func (m Mode) String() string {
	switch m {
	case Monotasks:
		return "monotasks"
	case Spark:
		return "spark"
	case SparkWithFlushedWrites:
		return "spark-flushed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Hardware describes one worker machine. The zero value selects the paper's
// HDD instances (8 cores, 2 HDDs, 1 Gb/s network, 60 GB memory).
type Hardware struct {
	Cores    int
	HDDs     int
	SSDs     int
	NetGbps  float64
	MemoryGB int
}

func (h Hardware) withDefaults() Hardware {
	if h.Cores <= 0 {
		h.Cores = 8
	}
	if h.HDDs <= 0 && h.SSDs <= 0 {
		h.HDDs = 2
	}
	if h.NetGbps <= 0 {
		h.NetGbps = 1
	}
	if h.MemoryGB <= 0 {
		h.MemoryGB = 60
	}
	return h
}

// machineSpec converts to the internal cluster description.
func (h Hardware) machineSpec() cluster.MachineSpec {
	h = h.withDefaults()
	spec := cluster.MachineSpec{
		Cores:    h.Cores,
		NetBW:    units.Gbps(h.NetGbps),
		MemBytes: int64(h.MemoryGB) * units.GB,
	}
	for i := 0; i < h.HDDs; i++ {
		spec.Disks = append(spec.Disks, resource.DefaultHDD())
	}
	for i := 0; i < h.SSDs; i++ {
		spec.Disks = append(spec.Disks, resource.DefaultSSD())
	}
	return spec
}

// Config parameterizes a Context.
type Config struct {
	// Machines is the worker count; default 4.
	Machines int
	// Hardware is the per-machine shape; zero value = paper HDD workers.
	Hardware Hardware
	// Mode selects the execution architecture; default Monotasks.
	Mode Mode
	// TasksPerMachine overrides the Spark modes' slot count (ignored by
	// Monotasks, which configures concurrency per resource — §7).
	TasksPerMachine int
	// CPUCostPerRecord is the virtual compute cost charged per record per
	// transformation, in seconds. Default 500 ns — the Spark-1.3-era data
	// plane the paper measures against. It prices simulated time only; your
	// functions' real Go runtime is irrelevant.
	CPUCostPerRecord float64
	// Speculation launches backup attempts for straggling tasks (Spark's
	// spark.speculation); useful on heterogeneous clusters.
	Speculation bool
	// MachineSpeeds optionally assigns per-machine speed factors (1 = full
	// speed); a 0.5 entry models a degraded straggler node. Missing entries
	// default to 1. Must not exceed Machines in length.
	MachineSpeeds []float64
	// Chaos, when set, enables deterministic fault injection (crashes,
	// recoveries, degraded devices, transient task failures) for every job
	// run on the Context. See ChaosConfig.
	Chaos *ChaosConfig
	// Pools declares named scheduling pools for concurrent jobs submitted
	// with the Async actions (CollectAsync + Context.Await): each pool gets
	// executor slots in proportion to its weight while it has runnable work.
	// A fair-share pool named DefaultPool always exists.
	Pools []PoolConfig
	// Telemetry, when set, attaches a live in-run sampler to the Context's
	// cluster: periodic snapshots of utilization, scheduler state, and
	// per-job attribution, readable via Context.Telemetry while jobs run.
	Telemetry *TelemetryConfig
	// Shards, when above 1, runs the Context's simulation on the sharded
	// engine: machines partition into that many shards (clamped to the
	// machine count) that advance in parallel within a topology-derived
	// lookahead horizon. Execution strategy only — job results and metrics
	// are bit-identical to the serial engine at any shard count.
	Shards int
	// WorkerDispatch delegates stage execution to worker-side dispatchers
	// (jobsched.Config.WorkerDispatch): workers self-assign tasks from the
	// job's execution template the moment a slot opens, and finished stages
	// broadcast completion metadata peer-to-peer, leaving the driver only
	// admission, fair-share, and attribution. Execution strategy only —
	// results are bit-identical to the centralized control plane.
	WorkerDispatch bool
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	c.Hardware = c.Hardware.withDefaults()
	if c.CPUCostPerRecord <= 0 {
		c.CPUCostPerRecord = 500e-9
	}
	return c
}

// Pair is a keyed record, the currency of ReduceByKey, SortByKey, and Join.
type Pair struct {
	Key   string
	Value any
}

// String renders "key\tvalue", the format SaveAsTextFile writes.
func (p Pair) String() string { return fmt.Sprintf("%s\t%v", p.Key, p.Value) }
