package monospark

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/task"
	"repro/internal/trace"
)

// Collect evaluates the dataset and returns every record (partition order,
// deterministic) together with the run's performance record.
func (d *Dataset) Collect() ([]any, *JobRun, error) {
	return d.CollectContext(context.Background())
}

// CollectContext is Collect with cooperative cancellation: if ctx is
// cancelled (or its deadline passes) while the virtual cluster is
// simulating, the run aborts cleanly with an error that unwraps to the
// context's. The data plane has already executed by then — cancellation
// bounds the simulation, which is the expensive phase for large clusters.
// After a cancelled run the Context is spent (its engine holds the aborted
// jobs' undrained events); further actions return a descriptive error.
func (d *Dataset) CollectContext(ctx context.Context) ([]any, *JobRun, error) {
	stages, run, err := d.runAction(ctx, "collect", false)
	if err != nil {
		return nil, nil, err
	}
	last := stages[len(stages)-1]
	var out []any
	for _, p := range last.out {
		out = append(out, p...)
	}
	return out, run, nil
}

// Count evaluates the dataset and returns its record count.
func (d *Dataset) Count() (int64, *JobRun, error) {
	return d.CountContext(context.Background())
}

// CountContext is Count with cooperative cancellation (see CollectContext).
func (d *Dataset) CountContext(ctx context.Context) (int64, *JobRun, error) {
	stages, run, err := d.runAction(ctx, "count", false)
	if err != nil {
		return 0, nil, err
	}
	var n int64
	for _, p := range stages[len(stages)-1].out {
		n += int64(len(p))
	}
	return n, run, nil
}

// Reduce folds all records with f (associative, commutative) and returns
// the result, or an error on an empty dataset.
func (d *Dataset) Reduce(f func(a, b any) any) (any, *JobRun, error) {
	stages, run, err := d.runAction(context.Background(), "reduce", false)
	if err != nil {
		return nil, nil, err
	}
	var acc any
	first := true
	for _, p := range stages[len(stages)-1].out {
		for _, rec := range p {
			if first {
				acc = rec
				first = false
				continue
			}
			acc = f(acc, rec)
		}
	}
	if first {
		return nil, nil, fmt.Errorf("monospark: reduce of empty dataset")
	}
	return acc, run, nil
}

// CountByKey evaluates a Pair dataset and returns per-key record counts.
func (d *Dataset) CountByKey() (map[string]int64, *JobRun, error) {
	stages, run, err := d.runAction(context.Background(), "countByKey", false)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]int64)
	for _, p := range stages[len(stages)-1].out {
		for _, rec := range p {
			pair, ok := rec.(Pair)
			if !ok {
				return nil, nil, fmt.Errorf("monospark: CountByKey over non-Pair record %T", rec)
			}
			out[pair.Key]++
		}
	}
	return out, run, nil
}

// SaveAsTextFile evaluates the dataset, writes each partition as a block of
// the named output file on the distributed filesystem (paying output disk
// I/O), and returns the written lines.
func (d *Dataset) SaveAsTextFile(name string) ([]string, *JobRun, error) {
	stages, run, err := d.runAction(context.Background(), "save:"+name, true)
	if err != nil {
		return nil, nil, err
	}
	var lines []string
	for _, p := range stages[len(stages)-1].out {
		for _, rec := range p {
			lines = append(lines, fmt.Sprint(rec))
		}
	}
	return lines, run, nil
}

// runAction plans, evaluates, simulates, and packages a job under ctx's
// cancellation.
func (d *Dataset) runAction(ctx context.Context, action string, writesOutput bool) ([]*stagePlan, *JobRun, error) {
	c := d.ctx
	c.jobSeq++
	name := fmt.Sprintf("job%d-%s", c.jobSeq, action)
	stages := topo(plan(d))
	if err := evaluate(stages, writesOutput); err != nil {
		return nil, nil, err
	}
	spec, err := c.toJobSpec(name, stages)
	if err != nil {
		return nil, nil, err
	}
	jm, err := c.runJobContext(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	run := &JobRun{
		Name:     name,
		Mode:     c.cfg.Mode,
		metrics:  jm,
		faultLog: c.FaultEvents(),
		res:      model.ClusterResources(c.cluster),
	}
	return stages, run, nil
}

// JobRun is a finished job's performance record. In Monotasks mode it
// carries the full per-monotask breakdown, which powers Explain and
// Predict; the Spark modes record only task spans (the paper's point —
// §6.6).
type JobRun struct {
	Name string
	Mode Mode

	metrics *task.JobMetrics
	res     model.Resources
	// faultLog snapshots the Context's injected faults up to this run's end
	// (empty without Config.Chaos).
	faultLog []faults.Record
}

// FaultEvents returns the faults injected up to the end of this run, in
// injection order. Empty unless the Context was built with Config.Chaos.
func (r *JobRun) FaultEvents() []FaultRecord {
	out := make([]FaultRecord, len(r.faultLog))
	copy(out, r.faultLog)
	return out
}

// Duration is the job's simulated wall-clock time.
func (r *JobRun) Duration() time.Duration {
	return time.Duration(float64(r.metrics.Duration()) * float64(time.Second))
}

// StageDurations lists each stage's simulated duration in order.
func (r *JobRun) StageDurations() []time.Duration {
	out := make([]time.Duration, 0, len(r.metrics.Stages))
	for _, st := range r.metrics.Stages {
		out = append(out, time.Duration(float64(st.Duration())*float64(time.Second)))
	}
	return out
}

// profile builds the §6 model view. Only Monotasks runs have the monotask
// metrics the model needs.
func (r *JobRun) profile() (*model.JobProfile, error) {
	if r.Mode != Monotasks {
		return nil, fmt.Errorf("monospark: %v runs do not expose per-resource metrics; use Monotasks mode", r.Mode)
	}
	return model.FromMetrics(r.metrics, r.res), nil
}

// StageBreakdown is one stage's ideal per-resource completion times (§6.1).
type StageBreakdown struct {
	Stage      string
	Actual     time.Duration
	IdealCPU   time.Duration
	IdealDisk  time.Duration
	IdealNet   time.Duration
	// IdealMem stays zero on clusters without the memory model.
	IdealMem   time.Duration
	Bottleneck string
}

// Explain returns the per-stage ideal resource times and bottlenecks.
func (r *JobRun) Explain() ([]StageBreakdown, error) {
	p, err := r.profile()
	if err != nil {
		return nil, err
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	var out []StageBreakdown
	for _, sp := range p.Stages {
		cpu, disk, net, mem := sp.IdealTimes(p.Res)
		out = append(out, StageBreakdown{
			Stage:      sp.Name,
			Actual:     secs(sp.ActualSeconds),
			IdealCPU:   secs(cpu),
			IdealDisk:  secs(disk),
			IdealNet:   secs(net),
			IdealMem:   secs(mem),
			Bottleneck: sp.Bottleneck(p.Res).String(),
		})
	}
	return out, nil
}

// Bottleneck names the job's dominant resource: the one whose ideal time,
// summed over stages, is largest.
func (r *JobRun) Bottleneck() (string, error) {
	p, err := r.profile()
	if err != nil {
		return "", err
	}
	var cpu, disk, net, mem float64
	for _, sp := range p.Stages {
		c, d, n, m := sp.IdealTimes(p.Res)
		cpu, disk, net, mem = cpu+c, disk+d, net+n, mem+m
	}
	switch {
	case disk >= cpu && disk >= net && disk >= mem:
		return "disk", nil
	case net >= cpu && net >= mem:
		return "network", nil
	case mem >= cpu:
		return "memory", nil
	default:
		return "cpu", nil
	}
}

// WriteTraceJSONL exports the run's monotask records, one JSON object per
// line. Only Monotasks runs can be traced.
func (r *JobRun) WriteTraceJSONL(w io.Writer) error {
	if r.Mode != Monotasks {
		return fmt.Errorf("monospark: %v runs have no monotask records to trace", r.Mode)
	}
	return trace.WriteJSONL(w, r.metrics)
}

// WriteChromeTrace exports the run in the Chrome trace-event format: open
// the file in chrome://tracing or Perfetto to see each machine's CPU, disk,
// and network lanes. Only Monotasks runs can be traced.
func (r *JobRun) WriteChromeTrace(w io.Writer) error {
	if r.Mode != Monotasks {
		return fmt.Errorf("monospark: %v runs have no monotask records to trace", r.Mode)
	}
	marks := make([]trace.Mark, 0, len(r.faultLog))
	for _, f := range r.faultLog {
		marks = append(marks, trace.Mark{
			At:      float64(f.At),
			Label:   fmt.Sprintf("%v: %s", f.Kind, f.Detail),
			Machine: f.Machine,
		})
	}
	return trace.WriteChromeTraceEvents(w, r.metrics, marks)
}

// Prediction is the answer to a what-if question about this run.
type Prediction struct {
	Current   time.Duration
	Predicted time.Duration
}

// Speedup is current/predicted (>1 means the change helps).
func (p Prediction) Speedup() float64 {
	if p.Predicted == 0 {
		return 0
	}
	return float64(p.Current) / float64(p.Predicted)
}

// Predict estimates this job's runtime under the given what-if changes
// (§6.2–§6.4). Construct changes with the perf package.
func (r *JobRun) Predict(whatifs ...model.WhatIf) (Prediction, error) {
	p, err := r.profile()
	if err != nil {
		return Prediction{}, err
	}
	pred := model.Predict(p, whatifs...)
	return Prediction{
		Current:   time.Duration(pred.ActualSeconds * float64(time.Second)),
		Predicted: time.Duration(pred.PredictedSeconds * float64(time.Second)),
	}, nil
}
