package monospark

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCollectContextPreCancelled: a dead context aborts before the simulation
// runs, the error unwraps to context.Canceled, and the Context is poisoned —
// the shared engine still holds the aborted job's events, so further actions
// must refuse cleanly instead of interleaving with stale state.
func TestCollectContextPreCancelled(t *testing.T) {
	sc := testContext(t, Monotasks)
	ds := wordCountDataset(t, sc, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ds.CollectContext(ctx)
	if err == nil {
		t.Fatal("cancelled context: Collect succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	// The Context is now spent: a plain Collect must fail with a descriptive
	// error, not panic or corrupt the next run.
	_, _, err = ds.Collect()
	if err == nil {
		t.Fatal("poisoned Context accepted another action")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned-Context error should carry the original cause: %v", err)
	}
}

func TestCollectContextExpiredDeadline(t *testing.T) {
	sc := testContext(t, Monotasks)
	ds := wordCountDataset(t, sc, 300)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := ds.CountContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: want DeadlineExceeded, got %v", err)
	}
}

// TestCollectContextUncancelledIdentical: passing a live context must not
// change the simulation at all — same records, same virtual duration as the
// plain Collect on an identical fresh Context.
func TestCollectContextUncancelledIdentical(t *testing.T) {
	plain := testContext(t, Monotasks)
	recsWant, runWant, err := wordCountDataset(t, plain, 300).Collect()
	if err != nil {
		t.Fatal(err)
	}
	withCtx := testContext(t, Monotasks)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	recsGot, runGot, err := wordCountDataset(t, withCtx, 300).CollectContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsGot) != len(recsWant) {
		t.Fatalf("record counts differ: %d with context vs %d without", len(recsGot), len(recsWant))
	}
	if runGot.Duration() != runWant.Duration() {
		t.Fatalf("virtual durations differ: %v with context vs %v without", runGot.Duration(), runWant.Duration())
	}
}

func TestAwaitContextCancelledPoisonsContext(t *testing.T) {
	sc := asyncContext(t)
	a1, err := wordCountDataset(t, sc, 300).CollectAsync(JobOptions{Pool: "prod"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := wordCountDataset(t, sc, 300).CountAsync(JobOptions{Pool: "adhoc"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sc.AwaitContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Await: want context.Canceled in chain, got %v", err)
	}
	for _, a := range []*AsyncAction{a1, a2} {
		if !a.Done() {
			t.Fatalf("action %s not finalized after cancelled Await", a.Name)
		}
		if a.Err() == nil {
			t.Fatalf("action %s reported success under a cancelled Await", a.Name)
		}
	}
	// The shared driver aborted mid-batch: the Context must refuse new work.
	if _, err := wordCountDataset(t, sc, 100).CollectAsync(JobOptions{}); err == nil {
		if _, err := sc.Await(); err == nil {
			t.Fatal("poisoned Context ran another Await batch")
		}
	}
}

// TestAsyncNegativeDeadlineRejected: a malformed scheduling tag (inverted
// dispatch window) surfaces as a submit error through the public API instead
// of panicking inside the scheduler.
func TestAsyncNegativeDeadlineRejected(t *testing.T) {
	sc := asyncContext(t)
	if _, err := wordCountDataset(t, sc, 100).CollectAsync(JobOptions{Pool: "prod", DeadlineSeconds: -5}); err != nil {
		t.Fatal(err) // submission only parks the job; the error comes from Await
	}
	_, err := sc.Await()
	if err == nil {
		t.Fatal("negative deadline accepted by the scheduler")
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("validation error mislabelled as cancellation: %v", err)
	}
	// Validation failures reject the job without running it — the Context
	// stays usable.
	if _, _, err := wordCountDataset(t, sc, 100).Count(); err != nil {
		t.Fatalf("Context unusable after a rejected submission: %v", err)
	}
}

// TestAsyncUndeclaredPoolKeepsContextUsable extends the undeclared-pool case:
// the rejection is an error (not a panic) and later jobs still run.
func TestAsyncUndeclaredPoolKeepsContextUsable(t *testing.T) {
	sc := asyncContext(t)
	if _, err := wordCountDataset(t, sc, 100).CollectAsync(JobOptions{Pool: "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Await(); err == nil {
		t.Fatal("undeclared pool accepted")
	}
	if _, _, err := wordCountDataset(t, sc, 100).Count(); err != nil {
		t.Fatalf("Context unusable after a rejected submission: %v", err)
	}
}
