package monospark

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/faults"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// Context owns a virtual cluster and creates Datasets on it. A Context is
// not safe for concurrent use; like a SparkContext, one goroutine drives it.
type Context struct {
	cfg      Config
	cluster  *cluster.Cluster
	fs       *dfs.FS
	execs    []task.Executor
	injector *faults.Injector
	sampler  *telemetry.Sampler
	jobSeq   int
	fileSeq  int
	datasets int
	// pendingAsync holds jobs queued by the Async actions until Await runs
	// them concurrently on one shared driver.
	pendingAsync []*AsyncAction
	// aborted poisons the Context after a cancelled run: the shared engine
	// still holds the aborted jobs' undrained events, so further runs on it
	// would interleave with stale state. A fresh Context is the recovery.
	aborted error
}

// New builds a Context over a fresh virtual cluster.
func New(cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	if len(cfg.MachineSpeeds) > cfg.Machines {
		return nil, fmt.Errorf("monospark: %d machine speeds for %d machines", len(cfg.MachineSpeeds), cfg.Machines)
	}
	specs := make([]cluster.MachineSpec, cfg.Machines)
	for i := range specs {
		specs[i] = cfg.Hardware.machineSpec()
		if i < len(cfg.MachineSpeeds) && cfg.MachineSpeeds[i] > 0 {
			specs[i] = specs[i].Degraded(cfg.MachineSpeeds[i])
		}
	}
	c, err := cluster.NewHetero(specs)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 0 {
		c.ConfigureSharding(cfg.Shards)
	}
	disks := len(cfg.Hardware.machineSpec().Disks)
	fs, err := dfs.New(dfs.Config{Machines: cfg.Machines, DisksPerMachine: disks})
	if err != nil {
		return nil, err
	}
	ctx := &Context{cfg: cfg, cluster: c, fs: fs}
	if cfg.Chaos != nil {
		if err := ctx.initChaos(); err != nil {
			return nil, err
		}
	}
	ctx.execs = run.Executors(c, ctx.runOptions())
	if cfg.Telemetry != nil {
		// The sampler outlives per-job drivers; each job run binds the fresh
		// driver (runJob, Await), so one snapshot stream spans the session.
		ctx.sampler = telemetry.Start(c, nil, *cfg.Telemetry)
	}
	return ctx, nil
}

func (c *Context) runOptions() run.Options {
	o := run.Options{TasksPerMachine: c.cfg.TasksPerMachine, Shards: c.cfg.Shards}
	if c.injector != nil {
		o.Faults = c.injector
	}
	switch c.cfg.Mode {
	case Spark:
		o.Mode = run.Spark
	case SparkWithFlushedWrites:
		o.Mode = run.SparkWriteThrough
	default:
		o.Mode = run.Monotasks
	}
	return o
}

// Config returns the context's effective configuration.
func (c *Context) Config() Config { return c.cfg }

// TextFile registers lines as a file stored on the cluster's distributed
// filesystem, split into the given number of partitions (HDFS-style blocks
// spread across machines). Jobs that read it pay disk I/O and
// deserialization for its bytes.
func (c *Context) TextFile(name string, lines []string, partitions int) (*Dataset, error) {
	if partitions <= 0 {
		partitions = c.cluster.TotalCores()
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("monospark: text file %q has no lines", name)
	}
	if partitions > len(lines) {
		partitions = len(lines)
	}
	records := make([]any, len(lines))
	var bytes int64
	for i, l := range lines {
		records[i] = l
		bytes += int64(len(l)) + 1
	}
	// One block per partition, spread across machines, so map tasks align
	// with blocks the way Spark's HadoopRDD partitions do.
	sizes := make([]int64, partitions)
	locs := make([]int, partitions)
	per := bytes / int64(partitions)
	rem := bytes - per*int64(partitions)
	for i := range sizes {
		sizes[i] = per
		if int64(i) < rem {
			sizes[i]++
		}
		locs[i] = i % c.cluster.Size()
	}
	c.fileSeq++
	file, err := c.fs.CreateAt(fmt.Sprintf("/user/%s-%d", name, c.fileSeq), sizes, locs)
	if err != nil {
		return nil, err
	}
	ds := c.newDataset(partitions)
	ds.source = &sourceInfo{records: records, bytes: bytes, file: file}
	return ds, nil
}

// TextFileFromOS loads a real file from the local filesystem, splits it
// into lines, and registers it like TextFile. This is the bridge for using
// the library on actual data: the bytes are read once into memory and the
// simulated cluster charges I/O for their logical size.
func (c *Context) TextFileFromOS(path string, partitions int) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("monospark: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return c.TextFile(filepath.Base(path), lines, partitions)
}

// Parallelize creates a Dataset from in-memory records: no disk reads and
// no input deserialization, like an RDD built from a driver collection.
func (c *Context) Parallelize(records []any, partitions int) (*Dataset, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("monospark: cannot parallelize zero records")
	}
	if partitions <= 0 {
		partitions = c.cluster.TotalCores()
	}
	if partitions > len(records) {
		partitions = len(records)
	}
	ds := c.newDataset(partitions)
	ds.source = &sourceInfo{records: records, inMemory: true, bytes: sizeOfRecords(records)}
	return ds, nil
}

func (c *Context) newDataset(partitions int) *Dataset {
	c.datasets++
	return &Dataset{ctx: c, id: c.datasets, partitions: partitions}
}

// TotalCores reports the cluster-wide core count.
func (c *Context) TotalCores() int { return c.cluster.TotalCores() }
